package pagestore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// MaxKeySize bounds one key so that a page always fits several
// entries; label byte keys are tens of bytes in practice.
const MaxKeySize = 1024

// node is the decoded form of a B-tree page. Key slices alias the
// sealed page buffer they were decoded from (which is never mutated —
// updates write a fresh buffer), so decoding allocates only the
// slice headers.
type node struct {
	leaf     bool
	keys     [][]byte
	vals     []uint32 // leaf: one value per key
	children []uint32 // internal: len(keys)+1 child page ids
	size     int      // encoded payload bytes
}

// Payload encodings:
//
//	leaf:     per entry: klen u16 | key | value u32
//	internal: child0 u32, then per key: klen u16 | key | child u32
const entryOverhead = 2 + 4

func (n *node) entrySize(i int) int { return entryOverhead + len(n.keys[i]) }

func decodeNode(buf []byte) (*node, error) {
	pl := payload(buf)
	nk := pageNKeys(buf)
	n := &node{size: len(pl), keys: make([][]byte, 0, nk)}
	off := 0
	switch pageType(buf) {
	case PageLeaf:
		n.leaf = true
		n.vals = make([]uint32, 0, nk)
	case PageInternal:
		if len(pl) < 4 {
			return nil, &ErrPageCorrupt{ID: pageID(buf), Reason: "internal node shorter than child0"}
		}
		n.children = make([]uint32, 0, nk+1)
		n.children = append(n.children, binary.BigEndian.Uint32(pl[:4]))
		off = 4
	default:
		return nil, &ErrPageCorrupt{ID: pageID(buf), Reason: fmt.Sprintf("unexpected page type %d", pageType(buf))}
	}
	for i := 0; i < nk; i++ {
		if off+2 > len(pl) {
			return nil, &ErrPageCorrupt{ID: pageID(buf), Reason: "truncated entry header"}
		}
		klen := int(binary.BigEndian.Uint16(pl[off : off+2]))
		off += 2
		if off+klen+4 > len(pl) {
			return nil, &ErrPageCorrupt{ID: pageID(buf), Reason: "truncated entry"}
		}
		n.keys = append(n.keys, pl[off:off+klen:off+klen])
		off += klen
		v := binary.BigEndian.Uint32(pl[off : off+4])
		off += 4
		if n.leaf {
			n.vals = append(n.vals, v)
		} else {
			n.children = append(n.children, v)
		}
	}
	if off != len(pl) {
		return nil, &ErrPageCorrupt{ID: pageID(buf), Reason: "trailing payload bytes"}
	}
	return n, nil
}

// encodeNode seals n into a fresh PageSize buffer under id. A node
// whose entries exceed PayloadSize is reported as an error — the split
// logic keeps nodes within bounds, so this is a guard against writing
// past the fixed buffer, never an expected path.
func encodeNode(n *node, id uint32) ([]byte, error) {
	buf := make([]byte, PageSize)
	pl := buf[HeaderSize : PageSize-FooterSize]
	off := 0
	typ := PageLeaf
	if !n.leaf {
		typ = PageInternal
		binary.BigEndian.PutUint32(pl[0:4], n.children[0])
		off = 4
	}
	for i, k := range n.keys {
		if off+entryOverhead+len(k) > len(pl) {
			return nil, fmt.Errorf("pagestore: node for page %d overflows payload: %d keys need > %d bytes", id, len(n.keys), len(pl))
		}
		binary.BigEndian.PutUint16(pl[off:off+2], uint16(len(k)))
		off += 2
		copy(pl[off:], k)
		off += len(k)
		v := uint32(0)
		if n.leaf {
			v = n.vals[i]
		} else {
			v = n.children[i+1]
		}
		binary.BigEndian.PutUint32(pl[off:off+4], v)
		off += 4
	}
	n.size = off
	Seal(buf, id, typ, len(n.keys), off)
	return buf, nil
}

// Tree is a B-tree over a shared pager, keyed by raw bytes with uint32
// values. Updates are copy-on-write: every mutated root-to-leaf path
// is rewritten into freshly allocated pages, except pages this Tree
// instance itself allocated since it was created or last flushed (the
// owned set), which are safely rewritten in place because no other
// clone or committed root can reach them. Clone is therefore O(1) —
// share the pager, take the root — which is what lets the snapshot
// layer keep one immutable tree per published snapshot.
//
// A Tree instance is not safe for concurrent mutation; the store layer
// serializes access. Distinct clones may be read concurrently.
type Tree struct {
	pg    *Pager
	root  uint32 // 0 = empty
	count int
	owned map[uint32]bool
}

// NewTree returns an empty tree over pg.
func NewTree(pg *Pager) *Tree {
	return &Tree{pg: pg, owned: map[uint32]bool{}}
}

// LoadTree attaches to a committed root.
func LoadTree(pg *Pager, root uint32, count int) *Tree {
	return &Tree{pg: pg, root: root, count: count, owned: map[uint32]bool{}}
}

// Root returns the current root page id (0 when empty).
func (t *Tree) Root() uint32 { return t.root }

// Count returns the number of entries.
func (t *Tree) Count() int { return t.count }

// Clone returns an independent tree sharing pg and the current root.
// Either side may keep mutating; path copying keeps the other's view
// intact. Cloning seals the receiver too: pages it allocated are now
// reachable from the clone's root, so neither side may rewrite them in
// place anymore.
func (t *Tree) Clone() *Tree {
	t.owned = map[uint32]bool{}
	return &Tree{pg: t.pg, root: t.root, count: t.count, owned: map[uint32]bool{}}
}

// Sealed drops ownership of every page allocated so far: called after
// a flush commits them, so later mutations path-copy instead of
// rewriting committed pages in place.
func (t *Tree) Sealed() { t.owned = map[uint32]bool{} }

// load returns the decoded node of a page. The pager memoizes the
// decode on the cache entry under its own lock, so concurrent clone
// readers sharing one pager never race on the memo.
func (t *Tree) load(id uint32) (*node, error) {
	return t.pg.GetNode(id)
}

// write stores n, reusing prev's page when this tree owns it (and the
// caller is replacing, not keeping, that version), else into a fresh
// page. It returns the page id holding n.
func (t *Tree) write(n *node, prev uint32) (uint32, error) {
	id := prev
	if id == 0 || !t.owned[id] {
		id = t.pg.Alloc()
		t.owned[id] = true
	}
	buf, err := encodeNode(n, id)
	if err != nil {
		return 0, err
	}
	if err := t.pg.Put(id, buf, n); err != nil {
		return 0, err
	}
	return id, nil
}

// search returns the first index i with key <= n.keys[i].
func searchKeys(keys [][]byte, key []byte) (int, bool) {
	i := sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], key) >= 0 })
	return i, i < len(keys) && bytes.Equal(keys[i], key)
}

// childIndex picks the child covering key in an internal node: the
// separator at index i is the smallest key of child i+1.
func childIndex(keys [][]byte, key []byte) int {
	return sort.Search(len(keys), func(i int) bool { return bytes.Compare(key, keys[i]) < 0 })
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) (uint32, bool, error) {
	id := t.root
	if id == 0 {
		return 0, false, nil
	}
	for {
		n, err := t.load(id)
		if err != nil {
			return 0, false, err
		}
		if n.leaf {
			i, ok := searchKeys(n.keys, key)
			if !ok {
				return 0, false, nil
			}
			return n.vals[i], true, nil
		}
		id = n.children[childIndex(n.keys, key)]
	}
}

// cloneNode copies a decoded node so it can be mutated without
// touching the shared cached view.
func cloneNode(n *node) *node {
	out := &node{leaf: n.leaf, size: n.size}
	out.keys = append(make([][]byte, 0, len(n.keys)+1), n.keys...)
	if n.leaf {
		out.vals = append(make([]uint32, 0, len(n.vals)+1), n.vals...)
	} else {
		out.children = append(make([]uint32, 0, len(n.children)+1), n.children...)
	}
	return out
}

// splitPoint picks the boundary index that divides n's encoded payload
// roughly in half by bytes rather than by entry count: with skewed key
// sizes a count split can leave one half over PayloadSize. An over-full
// node exceeds PayloadSize by at most one MaxKeySize entry (splits
// happen immediately after the insert that overflowed), so byte
// balance guarantees both halves fit. Both halves stay non-empty.
func splitPoint(n *node) int {
	total := 0
	for i := range n.keys {
		total += n.entrySize(i)
	}
	acc := 0
	for h := 1; h < len(n.keys); h++ {
		acc += n.entrySize(h - 1)
		if 2*acc >= total {
			return h
		}
	}
	return len(n.keys) - 1
}

// split divides an over-full node in two and returns the right half
// plus the separator key to install in the parent. A leaf keeps every
// entry — the separator is the right half's smallest key, which stays
// in that leaf — while an internal node pushes the boundary key up: it
// moves into the parent and is kept by neither half, so each child page
// stays reachable from exactly one side. (The sizes of both halves are
// recomputed when they are encoded.)
func split(n *node) (*node, []byte) {
	h := splitPoint(n)
	right := &node{leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[h:]...)
		right.vals = append(right.vals, n.vals[h:]...)
		n.keys = n.keys[:h]
		n.vals = n.vals[:h]
		return right, right.keys[0]
	}
	sep := n.keys[h]
	right.keys = append(right.keys, n.keys[h+1:]...)
	right.children = append(right.children, n.children[h+1:]...)
	n.keys = n.keys[:h]
	n.children = n.children[:h+1]
	return right, sep
}

// Insert stores val under key, replacing any existing value. The key
// bytes are copied into page storage.
func (t *Tree) Insert(key []byte, val uint32) error {
	if len(key) == 0 || len(key) > MaxKeySize {
		return fmt.Errorf("pagestore: key size %d out of range [1,%d]", len(key), MaxKeySize)
	}
	if t.root == 0 {
		n := &node{leaf: true, keys: [][]byte{append([]byte(nil), key...)}, vals: []uint32{val}}
		id, err := t.write(n, 0)
		if err != nil {
			return err
		}
		t.root, t.count = id, 1
		return nil
	}
	newRoot, sep, rightID, added, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if sep != nil {
		root := &node{leaf: false, keys: [][]byte{sep}, children: []uint32{newRoot, rightID}}
		newRoot, err = t.write(root, 0)
		if err != nil {
			return err
		}
	}
	t.root = newRoot
	if added {
		t.count++
	}
	return nil
}

// insert descends into page id and returns the id now holding the
// updated node, plus a separator and right-sibling id when the node
// split.
func (t *Tree) insert(id uint32, key []byte, val uint32) (newID uint32, sep []byte, rightID uint32, added bool, err error) {
	n, err := t.load(id)
	if err != nil {
		return 0, nil, 0, false, err
	}
	cp := cloneNode(n)
	if cp.leaf {
		i, ok := searchKeys(cp.keys, key)
		if ok {
			cp.vals[i] = val
		} else {
			added = true
			kc := append([]byte(nil), key...)
			cp.keys = append(cp.keys, nil)
			copy(cp.keys[i+1:], cp.keys[i:])
			cp.keys[i] = kc
			cp.vals = append(cp.vals, 0)
			copy(cp.vals[i+1:], cp.vals[i:])
			cp.vals[i] = val
			cp.size += entryOverhead + len(kc)
		}
	} else {
		ci := childIndex(cp.keys, key)
		childNew, childSep, childRight, childAdded, err := t.insert(cp.children[ci], key, val)
		if err != nil {
			return 0, nil, 0, false, err
		}
		added = childAdded
		cp.children[ci] = childNew
		if childSep != nil {
			cp.keys = append(cp.keys, nil)
			copy(cp.keys[ci+1:], cp.keys[ci:])
			cp.keys[ci] = childSep
			cp.children = append(cp.children, 0)
			copy(cp.children[ci+2:], cp.children[ci+1:])
			cp.children[ci+1] = childRight
			cp.size += entryOverhead + len(childSep)
		}
	}
	if cp.size > PayloadSize && len(cp.keys) > 1 {
		right, s := split(cp)
		rid, err := t.write(right, 0)
		if err != nil {
			return 0, nil, 0, false, err
		}
		nid, err := t.write(cp, id)
		if err != nil {
			return 0, nil, 0, false, err
		}
		return nid, append([]byte(nil), s...), rid, added, nil
	}
	nid, err := t.write(cp, id)
	if err != nil {
		return 0, nil, 0, false, err
	}
	return nid, nil, 0, added, nil
}

// Delete removes key, reporting whether it was present. Underflowing
// nodes are not rebalanced — deletes only shrink a page until it
// empties, at which point it is unlinked from its parent; compaction
// (a bulk rebuild into a fresh file) restores density.
func (t *Tree) Delete(key []byte) (bool, error) {
	if t.root == 0 {
		return false, nil
	}
	newRoot, removed, empty, err := t.delete(t.root, key)
	if err != nil {
		return false, err
	}
	if !removed {
		return false, nil
	}
	t.count--
	if empty {
		t.root = 0
		return true, nil
	}
	// Collapse a root holding a single child.
	for newRoot != 0 {
		n, err := t.load(newRoot)
		if err != nil {
			return false, err
		}
		if n.leaf || len(n.children) > 1 {
			break
		}
		newRoot = n.children[0]
	}
	t.root = newRoot
	return true, nil
}

func (t *Tree) delete(id uint32, key []byte) (newID uint32, removed, empty bool, err error) {
	n, err := t.load(id)
	if err != nil {
		return 0, false, false, err
	}
	if n.leaf {
		i, ok := searchKeys(n.keys, key)
		if !ok {
			return id, false, false, nil
		}
		cp := cloneNode(n)
		cp.size -= entryOverhead + len(cp.keys[i])
		cp.keys = append(cp.keys[:i], cp.keys[i+1:]...)
		cp.vals = append(cp.vals[:i], cp.vals[i+1:]...)
		if len(cp.keys) == 0 {
			return 0, true, true, nil
		}
		nid, err := t.write(cp, id)
		return nid, true, false, err
	}
	ci := childIndex(n.keys, key)
	childNew, removed, childEmpty, err := t.delete(n.children[ci], key)
	if err != nil || !removed {
		return id, removed, false, err
	}
	cp := cloneNode(n)
	if childEmpty {
		// Unlink the emptied child and the separator beside it (a
		// single-child node left by earlier unlinks has no separator).
		if len(cp.keys) > 0 {
			ki := ci
			if ki == len(cp.keys) {
				ki = len(cp.keys) - 1
			}
			cp.size -= entryOverhead + len(cp.keys[ki])
			cp.keys = append(cp.keys[:ki], cp.keys[ki+1:]...)
		}
		cp.children = append(cp.children[:ci], cp.children[ci+1:]...)
		if len(cp.children) == 0 {
			return 0, true, true, nil
		}
	} else {
		cp.children[ci] = childNew
	}
	nid, err := t.write(cp, id)
	return nid, true, false, err
}

// Scan walks every entry in key order, stopping early when fn returns
// false. The key slice passed to fn aliases page storage and is only
// valid during the call.
func (t *Tree) Scan(fn func(key []byte, val uint32) bool) error {
	return t.ScanFrom(nil, fn)
}

// ScanFrom walks entries with key >= from (nil = from the start) in
// key order, stopping early when fn returns false.
func (t *Tree) ScanFrom(from []byte, fn func(key []byte, val uint32) bool) error {
	if t.root == 0 {
		return nil
	}
	type frame struct {
		n   *node
		idx int
	}
	var stack []frame
	id := t.root
	for {
		n, err := t.load(id)
		if err != nil {
			return err
		}
		if n.leaf {
			i := 0
			if from != nil {
				i, _ = searchKeys(n.keys, from)
			}
			stack = append(stack, frame{n, i})
			break
		}
		ci := 0
		if from != nil {
			ci = childIndex(n.keys, from)
		}
		stack = append(stack, frame{n, ci})
		id = n.children[ci]
	}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.n.leaf {
			for ; top.idx < len(top.n.keys); top.idx++ {
				if !fn(top.n.keys[top.idx], top.n.vals[top.idx]) {
					return nil
				}
			}
			stack = stack[:len(stack)-1]
			continue
		}
		top.idx++
		if top.idx >= len(top.n.children) {
			stack = stack[:len(stack)-1]
			continue
		}
		// Descend leftmost under the next child.
		id := top.n.children[top.idx]
		for {
			n, err := t.load(id)
			if err != nil {
				return err
			}
			stack = append(stack, frame{n, 0})
			if n.leaf {
				break
			}
			id = n.children[0]
		}
	}
	return nil
}

// ScanPrefix walks entries whose key starts with prefix, in key order.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key []byte, val uint32) bool) error {
	return t.ScanFrom(prefix, func(k []byte, v uint32) bool {
		if !bytes.HasPrefix(k, prefix) {
			return false
		}
		return fn(k, v)
	})
}
