package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Meta is the commit record of a page file: the state a reader may
// trust. It lives in page 0 as two alternating 64-byte slots; a commit
// writes the slot the previous commit did not, so a torn meta write
// leaves the other slot intact and the reader picks the highest-epoch
// slot that verifies. Pages past the committed state may exist on disk
// (dirty writeback runs ahead of commits) but are unreachable from any
// committed root.
type Meta struct {
	// Epoch increments on every commit; the newest valid slot wins.
	Epoch uint64
	// Pages is the number of allocated pages, page 0 included; the
	// next allocation is page id Pages.
	Pages uint32
	// Roots holds the committed B-tree root page ids (0 = empty tree).
	Roots [2]uint32
	// Counts holds the committed entry count per tree.
	Counts [2]uint64
}

// Meta slot layout (64 bytes):
//
//	offset size field
//	0      4    magic "DXPM"
//	4      4    format version (1)
//	8      8    epoch
//	16     4    pages
//	20     4    roots[0]
//	24     4    roots[1]
//	28     8    counts[0]
//	36     8    counts[1]
//	44     16   reserved (zero)
//	60     4    CRC-32C over bytes [0, 60)
const (
	metaMagic   = 0x4458504D // "DXPM"
	metaVersion = 1
	metaSlotLen = 64
)

// ErrNoMeta reports a page file with no verifiable meta slot — a
// freshly torn or foreign file. Callers rebuild from the document.
var ErrNoMeta = errors.New("pagestore: no valid meta slot")

// File is one page file: fixed-size pages addressed by id, with the
// dual-slot commit record in page 0.
type File struct {
	f    *os.File
	path string
	meta Meta
	slot int // slot the current meta lives in; Commit writes 1-slot
}

func encodeMeta(m Meta) []byte {
	buf := make([]byte, metaSlotLen)
	binary.BigEndian.PutUint32(buf[0:4], metaMagic)
	binary.BigEndian.PutUint32(buf[4:8], metaVersion)
	binary.BigEndian.PutUint64(buf[8:16], m.Epoch)
	binary.BigEndian.PutUint32(buf[16:20], m.Pages)
	binary.BigEndian.PutUint32(buf[20:24], m.Roots[0])
	binary.BigEndian.PutUint32(buf[24:28], m.Roots[1])
	binary.BigEndian.PutUint64(buf[28:36], m.Counts[0])
	binary.BigEndian.PutUint64(buf[36:44], m.Counts[1])
	crc := crc32.Checksum(buf[:metaSlotLen-4], castagnoli)
	binary.BigEndian.PutUint32(buf[metaSlotLen-4:], crc)
	return buf
}

func decodeMeta(buf []byte) (Meta, bool) {
	if len(buf) < metaSlotLen {
		return Meta{}, false
	}
	if crc32.Checksum(buf[:metaSlotLen-4], castagnoli) != binary.BigEndian.Uint32(buf[metaSlotLen-4:metaSlotLen]) {
		return Meta{}, false
	}
	if binary.BigEndian.Uint32(buf[0:4]) != metaMagic || binary.BigEndian.Uint32(buf[4:8]) != metaVersion {
		return Meta{}, false
	}
	for _, b := range buf[44 : metaSlotLen-4] {
		if b != 0 {
			return Meta{}, false // reserved bytes must stay zero
		}
	}
	var m Meta
	m.Epoch = binary.BigEndian.Uint64(buf[8:16])
	m.Pages = binary.BigEndian.Uint32(buf[16:20])
	m.Roots[0] = binary.BigEndian.Uint32(buf[20:24])
	m.Roots[1] = binary.BigEndian.Uint32(buf[24:28])
	m.Counts[0] = binary.BigEndian.Uint64(buf[28:36])
	m.Counts[1] = binary.BigEndian.Uint64(buf[36:44])
	if m.Pages == 0 {
		return Meta{}, false // page 0 always exists in a committed file
	}
	return m, true
}

// Create truncates path into a fresh page file holding only page 0
// with an initial empty commit.
func Create(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: %w", err)
	}
	pf := &File{f: f, path: path, slot: 1}
	if err := pf.Commit(Meta{Pages: 1}); err != nil {
		_ = f.Close()
		return nil, err
	}
	return pf, nil
}

// Open opens an existing page file and restores the newest committed
// meta. A file with no verifiable meta slot fails with ErrNoMeta
// (matched via errors.Is); individual pages are verified lazily on
// ReadPage.
func Open(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("pagestore: %w", err)
	}
	buf := make([]byte, 2*metaSlotLen)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.ErrUnexpectedEOF {
		_ = f.Close()
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("pagestore: %s: %w", path, ErrNoMeta)
		}
		return nil, fmt.Errorf("pagestore: %w", err)
	}
	m0, ok0 := decodeMeta(buf[:metaSlotLen])
	m1, ok1 := decodeMeta(buf[metaSlotLen:])
	pf := &File{f: f, path: path}
	switch {
	case ok0 && (!ok1 || m0.Epoch >= m1.Epoch):
		pf.meta, pf.slot = m0, 0
	case ok1:
		pf.meta, pf.slot = m1, 1
	default:
		_ = f.Close()
		return nil, fmt.Errorf("pagestore: %s: %w", path, ErrNoMeta)
	}
	return pf, nil
}

// Meta returns the current committed meta.
func (pf *File) Meta() Meta { return pf.meta }

// Path returns the file's path.
func (pf *File) Path() string { return pf.path }

// ReadPage reads and verifies page id into buf (PageSize bytes).
func (pf *File) ReadPage(id uint32, buf []byte) error {
	if id == 0 {
		return &ErrPageCorrupt{ID: id, Reason: "page 0 is the meta page"}
	}
	if _, err := pf.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagestore: reading page %d: %w", id, err)
	}
	return Verify(buf, id)
}

// WritePage writes a sealed page buffer at its stored id. It does not
// sync; Commit provides the barrier.
func (pf *File) WritePage(buf []byte) error {
	id := pageID(buf)
	if id == 0 {
		return &ErrPageCorrupt{ID: id, Reason: "page 0 is the meta page"}
	}
	if _, err := pf.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pagestore: writing page %d: %w", id, err)
	}
	return nil
}

// Commit makes m the new committed state with the write-ordering rule
// every flush relies on: first fsync the data pages already written,
// then write the meta into the slot the previous commit did not use,
// then fsync again. A crash before the second fsync leaves the old
// slot winning; after it, the new one. The epoch is assigned here.
//
// vet:durable
func (pf *File) Commit(m Meta) error {
	if err := pf.f.Sync(); err != nil {
		return fmt.Errorf("pagestore: %w", err)
	}
	m.Epoch = pf.meta.Epoch + 1
	slot := 1 - pf.slot
	if _, err := pf.f.WriteAt(encodeMeta(m), int64(slot)*metaSlotLen); err != nil {
		return fmt.Errorf("pagestore: writing meta slot %d: %w", slot, err)
	}
	if err := pf.f.Sync(); err != nil {
		return fmt.Errorf("pagestore: %w", err)
	}
	pf.meta, pf.slot = m, slot
	return nil
}

// Close closes the underlying file without committing.
func (pf *File) Close() error { return pf.f.Close() }
