package pagestore

import (
	"bytes"
	"testing"
)

// FuzzPageRoundTrip seals arbitrary payload bytes into a page, reads
// it back clean, then corrupts exactly one byte anywhere in the page —
// header, payload, unused tail or footer — and requires Verify to
// fail. The CRC covers every byte it does not itself occupy, and a
// flipped CRC byte disagrees with the recomputed sum, so no single
// corrupted byte may ever verify.
func FuzzPageRoundTrip(f *testing.F) {
	f.Add([]byte("label bytes"), uint32(7), 100, byte(0x01))
	f.Add([]byte{}, uint32(1), 0, byte(0x80))
	f.Add(bytes.Repeat([]byte{0xAB}, PayloadSize), uint32(1<<20), 4095, byte(0xFF))
	f.Fuzz(func(t *testing.T, data []byte, id uint32, pos int, flip byte) {
		if id == 0 {
			id = 1
		}
		if len(data) > PayloadSize {
			data = data[:PayloadSize]
		}
		buf := make([]byte, PageSize)
		copy(buf[HeaderSize:], data)
		Seal(buf, id, PageLeaf, 0, len(data))
		if err := Verify(buf, id); err != nil {
			t.Fatalf("clean page failed verification: %v", err)
		}
		if !bytes.Equal(payload(buf), data) {
			t.Fatalf("payload round trip mismatch")
		}
		if flip == 0 {
			flip = 1 // xor by zero would not corrupt anything
		}
		pos %= PageSize
		if pos < 0 {
			pos += PageSize
		}
		buf[pos] ^= flip
		if err := Verify(buf, id); err == nil {
			t.Fatalf("single corrupted byte at %d (xor %02x) still verified", pos, flip)
		}
	})
}

// FuzzMetaDecode feeds arbitrary bytes to the meta-slot decoder: it
// must never accept a slot whose checksum does not match, and
// re-encoding an accepted slot must reproduce the input.
func FuzzMetaDecode(f *testing.F) {
	f.Add(encodeMeta(Meta{Epoch: 3, Pages: 9, Roots: [2]uint32{4, 5}, Counts: [2]uint64{1, 2}}))
	f.Add(make([]byte, metaSlotLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, ok := decodeMeta(data)
		if !ok {
			return
		}
		if !bytes.Equal(encodeMeta(m), data[:metaSlotLen]) {
			t.Fatalf("accepted meta %+v does not re-encode to its input", m)
		}
	})
}
