// Package pagestore is the paged storage layer under the label-index
// backend: fixed-size 4 KB pages with a typed header and a CRC-32C
// footer, a page file with a dual-slot commit record, a pager with an
// LRU cache and dirty-page writeback, and a copy-on-write B-tree keyed
// by raw label bytes.
//
// The checksum discipline mirrors labelstore v2: every page carries a
// Castagnoli CRC over everything but the footer, so a torn or bit-
// flipped page is detected on read, never silently decoded. Durability
// is layered the same way as the rest of the system: the journal's
// write-ahead log stays the recovery truth, and a page file that fails
// verification is simply rebuilt from the replayed document — the
// pager's job is spilling a large index out of RAM, not replacing the
// WAL.
package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Binary page layout. The 16-byte header matches the exemplar format:
//
//	offset size field
//	0      4    magic "DXPG"
//	4      4    page id
//	8      1    page type
//	9      1    flags (reserved, zero)
//	10     2    key count
//	12     2    payload bytes used
//	14     2    reserved (zero)
//	16     4076 payload
//	4092   4    CRC-32C over bytes [0, 4092)
const (
	// PageSize is the fixed on-disk page size.
	PageSize = 4096
	// HeaderSize is the typed page header.
	HeaderSize = 16
	// FooterSize is the CRC-32C footer.
	FooterSize = 4
	// PayloadSize is the usable payload per page.
	PayloadSize = PageSize - HeaderSize - FooterSize

	pageMagic = 0x44585047 // "DXPG"
)

// PageType tags what a page holds.
type PageType uint8

// Page types.
const (
	PageFree PageType = iota
	PageLeaf
	PageInternal
)

// castagnoli is the same CRC-32C polynomial labelstore v2 uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrPageCorrupt reports a page that failed header or checksum
// verification.
type ErrPageCorrupt struct {
	ID     uint32
	Reason string
}

func (e *ErrPageCorrupt) Error() string {
	return fmt.Sprintf("pagestore: page %d corrupt: %s", e.ID, e.Reason)
}

// Seal writes the header and CRC footer into buf (which must be
// PageSize long), leaving the payload bytes [HeaderSize, HeaderSize+used)
// as the caller filled them.
func Seal(buf []byte, id uint32, typ PageType, nkeys, used int) {
	_ = buf[PageSize-1]
	binary.BigEndian.PutUint32(buf[0:4], pageMagic)
	binary.BigEndian.PutUint32(buf[4:8], id)
	buf[8] = byte(typ)
	buf[9] = 0
	binary.BigEndian.PutUint16(buf[10:12], uint16(nkeys))
	binary.BigEndian.PutUint16(buf[12:14], uint16(used))
	binary.BigEndian.PutUint16(buf[14:16], 0)
	crc := crc32.Checksum(buf[:PageSize-FooterSize], castagnoli)
	binary.BigEndian.PutUint32(buf[PageSize-FooterSize:], crc)
}

// Verify checks a sealed page buffer against the id it was read as:
// magic, stored id, payload bounds and the CRC footer. Any single
// corrupted byte anywhere in the page fails the CRC (the footer bytes
// themselves included, since they must then disagree with the
// recomputed sum).
func Verify(buf []byte, id uint32) error {
	if len(buf) != PageSize {
		return &ErrPageCorrupt{ID: id, Reason: fmt.Sprintf("short page: %d bytes", len(buf))}
	}
	crc := crc32.Checksum(buf[:PageSize-FooterSize], castagnoli)
	if got := binary.BigEndian.Uint32(buf[PageSize-FooterSize:]); got != crc {
		return &ErrPageCorrupt{ID: id, Reason: fmt.Sprintf("checksum mismatch: stored %08x, computed %08x", got, crc)}
	}
	if m := binary.BigEndian.Uint32(buf[0:4]); m != pageMagic {
		return &ErrPageCorrupt{ID: id, Reason: fmt.Sprintf("bad magic %08x", m)}
	}
	if stored := binary.BigEndian.Uint32(buf[4:8]); stored != id {
		return &ErrPageCorrupt{ID: id, Reason: fmt.Sprintf("page stored as id %d", stored)}
	}
	if used := int(binary.BigEndian.Uint16(buf[12:14])); used > PayloadSize {
		return &ErrPageCorrupt{ID: id, Reason: fmt.Sprintf("used %d exceeds payload", used)}
	}
	return nil
}

// pageID reads the stored page id of a sealed buffer.
func pageID(buf []byte) uint32 { return binary.BigEndian.Uint32(buf[4:8]) }

// pageType reads the stored type of a sealed buffer.
func pageType(buf []byte) PageType { return PageType(buf[8]) }

// pageNKeys reads the stored key count of a sealed buffer.
func pageNKeys(buf []byte) int { return int(binary.BigEndian.Uint16(buf[10:12])) }

// pageUsed reads the stored payload length of a sealed buffer.
func pageUsed(buf []byte) int { return int(binary.BigEndian.Uint16(buf[12:14])) }

// payload returns the used payload bytes of a sealed buffer.
func payload(buf []byte) []byte { return buf[HeaderSize : HeaderSize+pageUsed(buf)] }
