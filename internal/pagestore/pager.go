package pagestore

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// Process-wide pager metrics, aggregated across every open pager.
var (
	mCacheHits   = metrics.Default.Counter("pagestore_cache_hits")
	mCacheMisses = metrics.Default.Counter("pagestore_cache_misses")
	mWritebacks  = metrics.Default.Counter("pagestore_writebacks")
	mPages       = metrics.Default.Gauge("pagestore_pages")
)

// MinCachePages is the smallest cache a pager will run with: enough to
// hold a root-to-leaf path of both trees plus the pages one mutation
// touches, so a pathological budget cannot thrash a single operation
// against its own evictions.
const MinCachePages = 8

// cached is one resident page: the sealed buffer, an optional decoded
// view (the B-tree memoizes its node decode here), and LRU links.
type cached struct {
	id         uint32
	buf        []byte // PageSize, sealed
	node       *node  // decoded B-tree view, nil until first decode
	dirty      bool
	prev, next *cached
}

// Pager serves fixed-size pages out of an LRU cache over a page File.
// Reads of uncached pages come from disk with CRC verification; new
// and updated pages enter the cache dirty and are written back when
// evicted or flushed. Only Flush moves the committed state — eviction
// writeback never fsyncs and never touches the meta page, so a crash
// exposes at most an old committed root whose pages are all intact.
//
// All methods are safe for concurrent use; snapshot readers and the
// writer share one pager.
type Pager struct {
	mu    sync.Mutex
	file  *File
	cap   int
	cache map[uint32]*cached
	head  *cached // most recently used
	tail  *cached // least recently used
	next  uint32  // vet:guardedby mu // next page id to allocate

	hits, misses, writebacks uint64 // vet:guardedby mu
}

// PagerStats is a point-in-time snapshot of one pager's counters.
type PagerStats struct {
	// Resident is the number of cached pages right now.
	Resident int
	// Allocated is the number of data pages ever allocated in the
	// current file (committed or not).
	Allocated int
	// Hits, Misses and Writebacks count cache lookups and dirty-page
	// evictions since the pager opened.
	Hits, Misses, Writebacks uint64
}

// NewPager wraps file with a cache of at most cachePages pages
// (clamped up to MinCachePages).
func NewPager(file *File, cachePages int) *Pager {
	if cachePages < MinCachePages {
		cachePages = MinCachePages
	}
	return &Pager{
		file:  file,
		cap:   cachePages,
		cache: make(map[uint32]*cached, cachePages),
		next:  file.Meta().Pages,
	}
}

// lruUnlink removes e from the LRU list.
//
// vet:holds p.mu
func (p *Pager) lruUnlink(e *cached) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// lruFront pushes e to the most-recently-used end.
//
// vet:holds p.mu
func (p *Pager) lruFront(e *cached) {
	e.prev, e.next = nil, p.head
	if p.head != nil {
		p.head.prev = e
	}
	p.head = e
	if p.tail == nil {
		p.tail = e
	}
}

// insertLocked adds e to the cache, evicting from the LRU end past
// capacity. Dirty evictees are written back (no fsync).
//
// vet:holds p.mu
func (p *Pager) insertLocked(e *cached) error {
	p.cache[e.id] = e
	p.lruFront(e)
	mPages.Add(1)
	for len(p.cache) > p.cap {
		victim := p.tail
		if victim == nil {
			break
		}
		if victim.dirty {
			if err := p.file.WritePage(victim.buf); err != nil {
				return err
			}
			victim.dirty = false
			p.writebacks++
			mWritebacks.Inc()
		}
		p.lruUnlink(victim)
		delete(p.cache, victim.id)
		mPages.Add(-1)
	}
	return nil
}

// Alloc reserves a fresh page id. The page becomes resident when the
// caller Puts its sealed buffer.
func (p *Pager) Alloc() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.next
	p.next++
	return id
}

// Get returns the resident entry for page id, reading and verifying it
// from disk on a cache miss.
func (p *Pager) Get(id uint32) (*cached, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.getLocked(id)
}

// GetNode returns the decoded B-tree view of page id, reading the page
// on a miss and memoizing the decode on the cache entry. The
// memoization happens while p.mu is held so that concurrent snapshot
// readers sharing one pager never race on the entry's node field.
func (p *Pager) GetNode(id uint32) (*node, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, err := p.getLocked(id)
	if err != nil {
		return nil, err
	}
	if e.node == nil {
		n, err := decodeNode(e.buf)
		if err != nil {
			return nil, err
		}
		e.node = n
	}
	return e.node, nil
}

// getLocked looks id up in the cache, faulting it in from disk on a
// miss.
//
// vet:holds p.mu
func (p *Pager) getLocked(id uint32) (*cached, error) {
	if p.cache == nil {
		return nil, fmt.Errorf("pagestore: pager is closed")
	}
	if e, ok := p.cache[id]; ok {
		p.hits++
		mCacheHits.Inc()
		p.lruUnlink(e)
		p.lruFront(e)
		return e, nil
	}
	p.misses++
	mCacheMisses.Inc()
	buf := make([]byte, PageSize)
	if err := p.file.ReadPage(id, buf); err != nil {
		return nil, err
	}
	e := &cached{id: id, buf: buf}
	if err := p.insertLocked(e); err != nil {
		return nil, err
	}
	return e, nil
}

// Put installs (or replaces) page id with a sealed buffer and its
// decoded view, marking it dirty. The buffer must be sealed under id.
func (p *Pager) Put(id uint32, buf []byte, n *node) error {
	if pageID(buf) != id {
		return &ErrPageCorrupt{ID: id, Reason: fmt.Sprintf("sealed as %d", pageID(buf))}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.cache[id]; ok {
		e.buf, e.node, e.dirty = buf, n, true
		p.lruUnlink(e)
		p.lruFront(e)
		return nil
	}
	return p.insertLocked(&cached{id: id, buf: buf, node: n, dirty: true})
}

// Flush writes every dirty page back and commits the given roots and
// counts: dirty writeback, fsync, meta slot write, fsync — the
// ordering rule that makes the committed root only ever reference
// fully-written pages.
func (p *Pager) Flush(roots [2]uint32, counts [2]uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.cache {
		if !e.dirty {
			continue
		}
		if err := p.file.WritePage(e.buf); err != nil {
			return err
		}
		e.dirty = false
	}
	return p.file.Commit(Meta{Pages: p.next, Roots: roots, Counts: counts})
}

// Stats returns a snapshot of the pager's counters.
func (p *Pager) Stats() PagerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PagerStats{
		Resident:   len(p.cache),
		Allocated:  int(p.next) - 1,
		Hits:       p.hits,
		Misses:     p.misses,
		Writebacks: p.writebacks,
	}
}

// Close drops the cache (without writeback) and closes the file. The
// committed state on disk is whatever the last Flush established.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cache != nil {
		mPages.Add(-float64(len(p.cache)))
		p.cache, p.head, p.tail = nil, nil, nil
	}
	return p.file.Close()
}
