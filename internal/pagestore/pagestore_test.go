package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestFileMetaRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Commit(Meta{Pages: 5, Roots: [2]uint32{3, 4}, Counts: [2]uint64{10, 20}}); err != nil {
		t.Fatal(err)
	}
	if err := pf.Commit(Meta{Pages: 9, Roots: [2]uint32{7, 8}, Counts: [2]uint64{11, 21}}); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	m := re.Meta()
	if m.Pages != 9 || m.Roots != [2]uint32{7, 8} || m.Counts != [2]uint64{11, 21} {
		t.Fatalf("reopened meta %+v", m)
	}
	// Three commits (Create's initial one included) → epoch 3.
	if m.Epoch != 3 {
		t.Fatalf("epoch %d, want 3", m.Epoch)
	}
}

func TestFileOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	if err := os.WriteFile(path, []byte("not a page file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrNoMeta) {
		t.Fatalf("Open on garbage: %v, want ErrNoMeta", err)
	}
}

func TestPageWriteReadVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	buf := make([]byte, PageSize)
	copy(buf[HeaderSize:], "hello pages")
	Seal(buf, 1, PageLeaf, 1, 11)
	if err := pf.WritePage(buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := pf.ReadPage(1, got); err != nil {
		t.Fatal(err)
	}
	if string(payload(got)) != "hello pages" {
		t.Fatalf("payload %q", payload(got))
	}
	// Reading it back under the wrong id must fail verification.
	if err := pf.ReadPage(2, got); err == nil {
		t.Fatal("page read under wrong id verified")
	}
}

func TestPagerEvictionWritebackAndReread(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPager(pf, MinCachePages)
	defer p.Close()
	// Fill well past the cache budget with dirty pages.
	const n = 64
	for i := 0; i < n; i++ {
		id := p.Alloc()
		buf := make([]byte, PageSize)
		msg := fmt.Sprintf("page-%d", id)
		copy(buf[HeaderSize:], msg)
		Seal(buf, id, PageLeaf, 0, len(msg))
		if err := p.Put(id, buf, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Resident > MinCachePages {
		t.Fatalf("resident %d exceeds cache budget %d", st.Resident, MinCachePages)
	}
	if st.Writebacks == 0 {
		t.Fatal("eviction past budget produced no writebacks")
	}
	// Every page — including the evicted ones — reads back intact.
	for id := uint32(1); id <= n; id++ {
		e, err := p.Get(id)
		if err != nil {
			t.Fatalf("page %d: %v", id, err)
		}
		want := fmt.Sprintf("page-%d", id)
		if string(payload(e.buf)) != want {
			t.Fatalf("page %d payload %q, want %q", id, payload(e.buf), want)
		}
	}
	if st := p.Stats(); st.Misses == 0 {
		t.Fatal("cold rereads recorded no cache misses")
	}
}

func TestTreeFlushReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPager(pf, 16)
	tr := NewTree(p)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(fmt.Appendf(nil, "key-%06d", i), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush([2]uint32{tr.Root(), 0}, [2]uint64{uint64(tr.Count()), 0}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	pf2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPager(pf2, 16)
	defer p2.Close()
	m := pf2.Meta()
	tr2 := LoadTree(p2, m.Roots[0], int(m.Counts[0]))
	if tr2.Count() != n {
		t.Fatalf("reopened count %d, want %d", tr2.Count(), n)
	}
	for i := 0; i < n; i += 97 {
		v, ok, err := tr2.Get(fmt.Appendf(nil, "key-%06d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != uint32(i) {
			t.Fatalf("key %d: got %d ok=%v", i, v, ok)
		}
	}
	got := 0
	prev := []byte(nil)
	if err := tr2.Scan(func(k []byte, v uint32) bool {
		if prev != nil && string(prev) >= string(k) {
			t.Fatalf("scan out of order at %q", k)
		}
		prev = append(prev[:0], k...)
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("scan visited %d entries, want %d", got, n)
	}
}

func TestTreeCloneIsolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPager(pf, 64)
	defer p.Close()
	tr := NewTree(p)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(fmt.Appendf(nil, "k%04d", i), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Clone()
	// The writer keeps mutating; pages reachable from snap's root must
	// be untouched because the writer no longer owns them.
	tr.Sealed()
	for i := 0; i < 500; i += 2 {
		if _, err := tr.Delete(fmt.Appendf(nil, "k%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 500; i < 600; i++ {
		if err := tr.Insert(fmt.Appendf(nil, "k%04d", i), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if snap.Count() != 500 {
		t.Fatalf("snapshot count %d", snap.Count())
	}
	for i := 0; i < 500; i++ {
		v, ok, err := snap.Get(fmt.Appendf(nil, "k%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != uint32(i) {
			t.Fatalf("snapshot lost k%04d (got %d ok=%v)", i, v, ok)
		}
	}
	if _, ok, _ := tr.Get([]byte("k0000")); ok {
		t.Fatal("writer still sees deleted key")
	}
}

// TestTreeDifferential drives random inserts, deletes, point gets and
// scans against a sorted-map oracle — the pagestore counterpart of the
// slice-vs-paged differential at the store layer.
func TestTreeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny cache forces constant eviction/reread during the run.
	p := NewPager(pf, MinCachePages)
	defer p.Close()
	tr := NewTree(p)
	oracle := map[string]uint32{}
	keyFor := func(i int) []byte {
		// Variable-length keys exercise split size accounting.
		return fmt.Appendf(nil, "%0*d", 4+i%13, i)
	}
	const ops = 6000
	for op := 0; op < ops; op++ {
		i := rng.Intn(1500)
		k := keyFor(i)
		switch rng.Intn(3) {
		case 0, 1:
			v := uint32(rng.Intn(1 << 20))
			if err := tr.Insert(k, v); err != nil {
				t.Fatal(err)
			}
			oracle[string(k)] = v
		case 2:
			removed, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, want := oracle[string(k)]
			if removed != want {
				t.Fatalf("op %d: delete %q removed=%v oracle=%v", op, k, removed, want)
			}
			delete(oracle, string(k))
		}
		if op%500 == 0 {
			tr.Sealed() // exercise the path-copy side too
		}
	}
	if tr.Count() != len(oracle) {
		t.Fatalf("count %d, oracle %d", tr.Count(), len(oracle))
	}
	for k, want := range oracle {
		v, ok, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != want {
			t.Fatalf("get %q = %d ok=%v, want %d", k, v, ok, want)
		}
	}
	seen := 0
	prev := ""
	if err := tr.Scan(func(k []byte, v uint32) bool {
		if prev != "" && prev >= string(k) {
			t.Fatalf("scan order violation at %q", k)
		}
		prev = string(k)
		if want, ok := oracle[prev]; !ok || v != want {
			t.Fatalf("scan saw %q=%d, oracle %d (present %v)", k, v, want, ok)
		}
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != len(oracle) {
		t.Fatalf("scan visited %d, oracle holds %d", seen, len(oracle))
	}
}

// TestTreeInternalSplitScan pushes the tree well past the internal-node
// split threshold and checks a full scan visits every entry exactly
// once in strict key order: a split that leaves a child reachable from
// both halves shows up here as duplicate visits and order violations.
// Wide keys keep the fan-out small so a few thousand inserts build and
// repeatedly split several internal levels.
func TestTreeInternalSplitScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPager(pf, 64)
	defer p.Close()
	tr := NewTree(p)
	pad := strings.Repeat("x", 480)
	keyFor := func(i int) []byte { return fmt.Appendf(nil, "key-%06d-%s", i, pad) }
	const n = 4000
	rng := rand.New(rand.NewSource(7))
	for _, i := range rng.Perm(n) {
		if err := tr.Insert(keyFor(i), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != n {
		t.Fatalf("count %d, want %d", tr.Count(), n)
	}
	seen := 0
	prev := []byte(nil)
	if err := tr.Scan(func(k []byte, v uint32) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan order violation at entry %d: %q after %q", seen, k[:10], prev[:10])
		}
		prev = append(prev[:0], k...)
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("scan visited %d entries, want %d (duplicated or lost subtrees)", seen, n)
	}
	for i := 0; i < n; i += 131 {
		v, ok, err := tr.Get(keyFor(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != uint32(i) {
			t.Fatalf("key %d: got %d ok=%v", i, v, ok)
		}
	}
	// Deletes across the whole range must keep the scan consistent too.
	for i := 0; i < n; i += 3 {
		if removed, err := tr.Delete(keyFor(i)); err != nil || !removed {
			t.Fatalf("delete %d: removed=%v err=%v", i, removed, err)
		}
	}
	seen = 0
	if err := tr.Scan(func(k []byte, v uint32) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != tr.Count() {
		t.Fatalf("post-delete scan visited %d, count %d", seen, tr.Count())
	}
}

// TestTreeSkewedKeySizes mixes keys near MaxKeySize with tiny ones so a
// count-based split would pack nearly all the bytes into one half and
// overflow a page; the byte-balanced split must keep every node
// encodable, and every entry must stay retrievable.
func TestTreeSkewedKeySizes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPager(pf, 64)
	defer p.Close()
	tr := NewTree(p)
	rng := rand.New(rand.NewSource(11))
	oracle := map[string]uint32{}
	for i := 0; i < 3000; i++ {
		var k []byte
		if rng.Intn(2) == 0 {
			k = fmt.Appendf(nil, "t%04d", rng.Intn(2000))
		} else {
			pad := strings.Repeat("y", MaxKeySize-6-rng.Intn(24))
			k = fmt.Appendf(nil, "h%04d-%s", rng.Intn(2000), pad)
		}
		v := uint32(rng.Intn(1 << 20))
		if err := tr.Insert(k, v); err != nil {
			t.Fatalf("insert %d (%d-byte key): %v", i, len(k), err)
		}
		oracle[string(k)] = v
	}
	if tr.Count() != len(oracle) {
		t.Fatalf("count %d, oracle %d", tr.Count(), len(oracle))
	}
	for k, want := range oracle {
		v, ok, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != want {
			t.Fatalf("get %d-byte key = %d ok=%v, want %d", len(k), v, ok, want)
		}
	}
	seen := 0
	if err := tr.Scan(func(k []byte, v uint32) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != len(oracle) {
		t.Fatalf("scan visited %d, oracle holds %d", seen, len(oracle))
	}
}

// TestCloneConcurrentColdReads exercises the documented guarantee that
// distinct clones sharing one pager may be read concurrently: several
// clones scan through a minimum-size cache — constantly faulting the
// same cold pages back in and memoizing their decodes — while the
// writer keeps inserting. Run under -race this catches unsynchronized
// sharing on the pager's cache entries.
func TestCloneConcurrentColdReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPager(pf, MinCachePages)
	defer p.Close()
	tr := NewTree(p)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(fmt.Appendf(nil, "key-%06d", i), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush([2]uint32{tr.Root(), 0}, [2]uint64{uint64(tr.Count()), 0}); err != nil {
		t.Fatal(err)
	}
	tr.Sealed()
	var wg sync.WaitGroup
	errs := make(chan error, 5)
	for g := 0; g < 4; g++ {
		snap := tr.Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Repeated scans keep re-faulting evicted pages, so the
			// readers stay overlapped on the same cold entries.
			for pass := 0; pass < 5; pass++ {
				seen := 0
				if err := snap.Scan(func(k []byte, v uint32) bool { seen++; return true }); err != nil {
					errs <- err
					return
				}
				if seen != n {
					errs <- fmt.Errorf("clone scan saw %d entries, want %d", seen, n)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := n; i < n+500; i++ {
			if err := tr.Insert(fmt.Appendf(nil, "key-%06d", i), uint32(i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestScanPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	pf, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPager(pf, 16)
	defer p.Close()
	tr := NewTree(p)
	for _, name := range []string{"a", "ab", "b"} {
		for i := 0; i < 300; i++ {
			if err := tr.Insert(fmt.Appendf(nil, "%s\x00%06d", name, i), uint32(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := 0
	if err := tr.ScanPrefix([]byte("ab\x00"), func(k []byte, v uint32) bool {
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 300 {
		t.Fatalf("prefix scan saw %d entries, want 300", got)
	}
}
