package pagestore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestTornFileEveryOffset mirrors labelstore's every-offset truncation
// corpus: build a committed page file, then for every truncation
// length from 0 to the full file, reopen and require one of exactly
// two outcomes — a clean ErrNoMeta/verification failure (caller
// rebuilds), or a successfully restored committed state whose
// committed pages all read back CRC-clean with their committed
// contents. Never a panic, never silently wrong data.
//
// The commit ordering rule (data fsync before meta write) means any
// truncation that leaves a valid meta slot also leaves every page that
// slot's state references, because pages land at offsets below
// Pages*PageSize and meta lives in page 0 — a truncated tail can only
// cut pages past the committed count or the meta page itself.
func TestTornFileEveryOffset(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig")
	pf, err := Create(orig)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPager(pf, 32)
	tr := NewTree(p)
	const n = 120
	for i := 0; i < n; i++ {
		if err := tr.Insert(fmt.Appendf(nil, "key-%04d", i), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush([2]uint32{tr.Root(), 0}, [2]uint64{uint64(tr.Count()), 0}); err != nil {
		t.Fatal(err)
	}
	committed := pf.Meta()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}

	// Stepping by a prime under PageSize hits every alignment class
	// (mid-header, mid-payload, mid-footer, page boundaries) while
	// keeping the corpus fast; the boundaries themselves are added
	// explicitly.
	offsets := map[int]bool{0: true, len(full): true}
	for off := 0; off < len(full); off += 61 {
		offsets[off] = true
	}
	for off := 0; off <= len(full); off += PageSize {
		offsets[off] = true
		if off > 0 {
			offsets[off-1] = true
		}
	}

	for off := range offsets {
		trunc := filepath.Join(dir, "trunc")
		if err := os.WriteFile(trunc, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(trunc)
		if err != nil {
			continue // clean failure: the caller rebuilds
		}
		m := re.Meta()
		if m.Epoch > committed.Epoch {
			t.Fatalf("offset %d: restored epoch %d beyond committed %d", off, m.Epoch, committed.Epoch)
		}
		// Whatever state was restored, every page the restored tree
		// references must read back clean and the entries must be a
		// committed prefix state (here: only empty or the full commit,
		// since there was exactly one data commit).
		rp := NewPager(re, 32)
		rt := LoadTree(rp, m.Roots[0], int(m.Counts[0]))
		count := 0
		scanErr := rt.Scan(func(k []byte, v uint32) bool {
			count++
			return true
		})
		if scanErr != nil {
			// A failed page read on a committed root would break the
			// ordering rule — but only if this state was committed with
			// all its pages below the truncation point.
			if int64(off) >= int64(m.Pages)*PageSize {
				t.Fatalf("offset %d: committed state (pages=%d) unreadable: %v", off, m.Pages, scanErr)
			}
		} else if count != 0 && count != n {
			t.Fatalf("offset %d: restored %d entries, want 0 or %d", off, count, n)
		}
		_ = rp.Close()
	}
}
