// Package prefix implements the prefix labeling scheme family: a
// node's label is its parent's label concatenated with its own self
// label (Section 2.2 of the CDBS paper). The self-label encoding is
// pluggable, yielding DeweyID(UTF8)-Prefix, Binary-String-Prefix,
// OrdPath1/2-Prefix, QED-Prefix and V-CDBS-Prefix.
package prefix

import (
	"errors"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/cdbs"
	"repro/internal/deweyid"
	"repro/internal/ordpath"
	"repro/internal/qed"
)

// Component is one self label; its concrete type belongs to the codec.
type Component any

// ErrNoRoom reports that no self label fits between the neighbors
// without re-labeling (static codecs only).
var ErrNoRoom = errors.New("prefix: no room between sibling labels without re-labeling")

// ComponentCodec encodes self labels.
type ComponentCodec interface {
	// Name returns the scheme display name, e.g. "QED-Prefix".
	Name() string
	// Dynamic reports whether Between always succeeds.
	Dynamic() bool
	// Initial returns the self labels for n siblings at build time.
	Initial(n int) ([]Component, error)
	// Between returns a self label strictly between l and r; nil
	// bounds are open. Static codecs return ErrNoRoom except when
	// appending (r == nil).
	Between(l, r Component) (Component, error)
	// NBetween returns n ordered self labels strictly between l and r
	// (nil bounds open), assigned with even subdivision so a bulk
	// sibling run gets short labels. Static codecs return ErrNoRoom
	// when the gap cannot hold n labels.
	NBetween(l, r Component, n int) ([]Component, error)
	// Compare orders two self labels.
	Compare(a, b Component) int
	// Bits returns the storage of one component, including its
	// delimiter or length overhead.
	Bits(c Component) int
}

// AllCodecs returns the prefix-scheme codecs in the order the paper's
// figures list them.
func AllCodecs() []ComponentCodec {
	return []ComponentCodec{
		Dewey(), Cohen(), OrdPath(ordpath.Table1), OrdPath(ordpath.Table2), QEDCodec(), VCDBSCodec(),
	}
}

// ---------------------------------------------------------------------------
// DeweyID(UTF8)

type deweyCodec struct{}

// Dewey returns the DeweyID(UTF8) component codec: 1-based ordinals in
// self-delimiting UTF-8-style bytes. Static: insertions between
// siblings re-label the following siblings and their subtrees.
func Dewey() ComponentCodec { return deweyCodec{} }

func (deweyCodec) Name() string  { return "DeweyID(UTF8)-Prefix" }
func (deweyCodec) Dynamic() bool { return false }

func (deweyCodec) Initial(n int) ([]Component, error) {
	if n < 0 {
		return nil, fmt.Errorf("prefix: bad sibling count %d", n)
	}
	out := make([]Component, n)
	for i := range out {
		out[i] = i + 1
	}
	return out, nil
}

func (deweyCodec) Between(l, r Component) (Component, error) {
	if r == nil {
		if l == nil {
			return 1, nil
		}
		return l.(int) + 1, nil // appending needs no re-labeling
	}
	lv := 0
	if l != nil {
		lv = l.(int)
	}
	if rv := r.(int); rv-lv >= 2 {
		return lv + (rv-lv)/2, nil
	}
	return nil, ErrNoRoom
}

// NBetween spreads n ordinals evenly across the integer gap, or
// counts up from l when the right bound is open (appending).
func (deweyCodec) NBetween(l, r Component, n int) ([]Component, error) {
	if n < 0 {
		return nil, fmt.Errorf("prefix: NBetween count %d is negative", n)
	}
	lv := 0
	if l != nil {
		lv = l.(int)
	}
	out := make([]Component, n)
	if r == nil {
		for i := range out {
			out[i] = lv + i + 1
		}
		return out, nil
	}
	rv := r.(int)
	if rv-lv-1 < n {
		return nil, ErrNoRoom
	}
	span := rv - lv
	for i := range out {
		out[i] = lv + span*(i+1)/(n+1)
	}
	return out, nil
}

func (deweyCodec) Compare(a, b Component) int { return intCompare(a.(int), b.(int)) }

func (deweyCodec) Bits(c Component) int { return 8 * deweyid.UTF8ComponentBytes(c.(int)) }

func intCompare(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Binary-String (Cohen, Kaplan, Milo)

type cohenCodec struct{}

// Cohen returns the binary-string component codec of Cohen et al.:
// the i-th child costs i bits (i−1 ones and a zero), giving the "very
// large label sizes" of Section 2.2.
func Cohen() ComponentCodec { return cohenCodec{} }

func (cohenCodec) Name() string  { return "Binary-String-Prefix" }
func (cohenCodec) Dynamic() bool { return false }

func (cohenCodec) Initial(n int) ([]Component, error) { return deweyCodec{}.Initial(n) }

func (cohenCodec) Between(l, r Component) (Component, error) {
	return deweyCodec{}.Between(l, r)
}

func (cohenCodec) NBetween(l, r Component, n int) ([]Component, error) {
	return deweyCodec{}.NBetween(l, r, n)
}

func (cohenCodec) Compare(a, b Component) int { return intCompare(a.(int), b.(int)) }

func (cohenCodec) Bits(c Component) int { return deweyid.CohenSelfBits(c.(int)) }

// ---------------------------------------------------------------------------
// ORDPATH

type ordpathCodec struct {
	table *ordpath.Table
}

// OrdPath returns the ORDPATH component codec over the given bit-code
// table ("OrdPath1-Prefix" / "OrdPath2-Prefix"). Components are kept
// in their encoded bitstring form, as stored labels would be: ordering
// compares bits directly (ORDPATH's order-preserving codes), but an
// insertion must decode the neighbor components, caret in with integer
// arithmetic and re-encode — the decode cost Section 2.2 of the CDBS
// paper charges ORDPATH updates.
func OrdPath(table *ordpath.Table) ComponentCodec { return ordpathCodec{table: table} }

func (c ordpathCodec) Name() string  { return c.table.Name() + "-Prefix" }
func (c ordpathCodec) Dynamic() bool { return true }

// encodeSelf serialises one self label.
func (c ordpathCodec) encodeSelf(s ordpath.Self) (bitstr.BitString, error) {
	return c.table.EncodeLabel(ordpath.Label(s))
}

// decodeSelf parses one encoded self label.
func (c ordpathCodec) decodeSelf(comp Component) (ordpath.Self, error) {
	b, ok := comp.(bitstr.BitString)
	if !ok {
		return nil, fmt.Errorf("prefix: ordpath component has type %T", comp)
	}
	lab, err := c.table.DecodeLabel(b)
	if err != nil {
		return nil, err
	}
	return ordpath.Self(lab), nil
}

func (c ordpathCodec) Initial(n int) ([]Component, error) {
	if n < 0 {
		return nil, fmt.Errorf("prefix: bad sibling count %d", n)
	}
	selfs := ordpath.InitialChildren(n)
	out := make([]Component, n)
	for i, s := range selfs {
		enc, err := c.encodeSelf(s)
		if err != nil {
			return nil, err
		}
		out[i] = enc
	}
	return out, nil
}

func (c ordpathCodec) Between(l, r Component) (Component, error) {
	var ls, rs ordpath.Self
	var err error
	if l != nil {
		if ls, err = c.decodeSelf(l); err != nil {
			return nil, err
		}
	}
	if r != nil {
		if rs, err = c.decodeSelf(r); err != nil {
			return nil, err
		}
	}
	m, err := ordpath.BetweenSelf(ls, rs)
	if err != nil {
		return nil, err
	}
	return c.encodeSelf(m)
}

// NBetween subdivides with per-gap Between calls: ORDPATH's careting
// rules have no closed positional form, so the generic even
// subdivision is its bulk path.
func (c ordpathCodec) NBetween(l, r Component, n int) ([]Component, error) {
	return nBetweenByBisection(c, l, r, n)
}

// nBetweenByBisection is the generic even-subdivision bulk assignment
// for codecs without a one-pass closed form: each gap's middle label
// comes from one Between call, exactly the shape of Algorithm 2's
// procedure SubEncoding.
func nBetweenByBisection(c ComponentCodec, l, r Component, n int) ([]Component, error) {
	if n < 0 {
		return nil, fmt.Errorf("prefix: NBetween count %d is negative", n)
	}
	out := make([]Component, n+2)
	out[0], out[n+1] = l, r
	var sub func(lo, hi int) error
	sub = func(lo, hi int) error {
		if lo+1 >= hi {
			return nil
		}
		mid := (lo + hi + 1) / 2
		m, err := c.Between(out[lo], out[hi])
		if err != nil {
			return err
		}
		out[mid] = m
		if err := sub(lo, mid); err != nil {
			return err
		}
		return sub(mid, hi)
	}
	if err := sub(0, n+1); err != nil {
		return nil, err
	}
	return out[1 : n+1], nil
}

func (c ordpathCodec) Compare(a, b Component) int {
	ab, bb := a.(bitstr.BitString), b.(bitstr.BitString)
	// The component code is order-preserving for raw bit comparison,
	// except when one encoding is a bit-prefix of the other; then the
	// codes must be decoded to compare componentwise.
	if !ab.HasPrefix(bb) && !bb.HasPrefix(ab) {
		return ab.Compare(bb)
	}
	if ab.Equal(bb) {
		return 0
	}
	as, errA := c.decodeSelf(a)
	bs, errB := c.decodeSelf(b)
	if errA != nil || errB != nil {
		return ab.Compare(bb)
	}
	return as.Compare(bs)
}

func (c ordpathCodec) Bits(comp Component) int {
	return comp.(bitstr.BitString).Len()
}

// ---------------------------------------------------------------------------
// QED

type qedPrefixCodec struct{}

// QEDCodec returns the QED component codec: quaternary self labels
// with "0" separators ("QED-Prefix").
func QEDCodec() ComponentCodec { return qedPrefixCodec{} }

func (qedPrefixCodec) Name() string  { return "QED-Prefix" }
func (qedPrefixCodec) Dynamic() bool { return true }

func (qedPrefixCodec) Initial(n int) ([]Component, error) {
	codes, err := qed.Encode(n)
	if err != nil {
		return nil, err
	}
	out := make([]Component, n)
	for i, code := range codes {
		out[i] = code
	}
	return out, nil
}

func (qedPrefixCodec) Between(l, r Component) (Component, error) {
	lc, rc := qed.Empty, qed.Empty
	if l != nil {
		lc = l.(qed.Code)
	}
	if r != nil {
		rc = r.(qed.Code)
	}
	return qed.Between(lc, rc)
}

// NBetween lays the run into the gap with qed.EncodeBetween's
// one-pass even subdivision.
func (qedPrefixCodec) NBetween(l, r Component, n int) ([]Component, error) {
	lc, rc := qed.Empty, qed.Empty
	if l != nil {
		lc = l.(qed.Code)
	}
	if r != nil {
		rc = r.(qed.Code)
	}
	codes, err := qed.EncodeBetween(lc, rc, n)
	if err != nil {
		return nil, err
	}
	out := make([]Component, n)
	for i, code := range codes {
		out[i] = code
	}
	return out, nil
}

func (qedPrefixCodec) Compare(a, b Component) int {
	return a.(qed.Code).Compare(b.(qed.Code))
}

func (qedPrefixCodec) Bits(c Component) int { return c.(qed.Code).BitsWithSeparator() }

// ---------------------------------------------------------------------------
// V-CDBS

type cdbsPrefixCodec struct{}

// VCDBSCodec returns the CDBS component codec: V-CDBS self labels
// carried in UTF-8-style byte containers for delimiting, so that (as
// Section 7.2.1 notes) its label size matches DeweyID(UTF8)-Prefix
// while insertions never re-label.
func VCDBSCodec() ComponentCodec { return cdbsPrefixCodec{} }

func (cdbsPrefixCodec) Name() string  { return "V-CDBS-Prefix" }
func (cdbsPrefixCodec) Dynamic() bool { return true }

func (cdbsPrefixCodec) Initial(n int) ([]Component, error) {
	codes, err := cdbs.Encode(n)
	if err != nil {
		return nil, err
	}
	out := make([]Component, n)
	for i, code := range codes {
		out[i] = code
	}
	return out, nil
}

func (cdbsPrefixCodec) Between(l, r Component) (Component, error) {
	lb, rb := bitstr.Empty, bitstr.Empty
	if l != nil {
		lb = l.(bitstr.BitString)
	}
	if r != nil {
		rb = r.(bitstr.BitString)
	}
	return cdbs.Between(lb, rb)
}

// NBetween lays the run into the gap with cdbs.EncodeBetween's
// one-pass even subdivision.
func (cdbsPrefixCodec) NBetween(l, r Component, n int) ([]Component, error) {
	lb, rb := bitstr.Empty, bitstr.Empty
	if l != nil {
		lb = l.(bitstr.BitString)
	}
	if r != nil {
		rb = r.(bitstr.BitString)
	}
	codes, err := cdbs.EncodeBetween(lb, rb, n)
	if err != nil {
		return nil, err
	}
	out := make([]Component, n)
	for i, code := range codes {
		out[i] = code
	}
	return out, nil
}

func (cdbsPrefixCodec) Compare(a, b Component) int {
	return a.(bitstr.BitString).Compare(b.(bitstr.BitString))
}

func (cdbsPrefixCodec) Bits(c Component) int {
	return 8 * utf8ContainerBytes(c.(bitstr.BitString).Len())
}

// utf8ContainerBytes returns how many UTF-8-style container bytes a
// payload of n bits needs (7 payload bits in a 1-byte container, then
// 11, 16, 21, 26, 31 — the RFC 2279 ladder).
func utf8ContainerBytes(n int) int {
	switch {
	case n <= 7:
		return 1
	case n <= 11:
		return 2
	case n <= 16:
		return 3
	case n <= 21:
		return 4
	case n <= 26:
		return 5
	default:
		return 6
	}
}

// ComponentMarshaler is implemented by component codecs that can
// serialise components for storage. All built-in codecs implement it.
type ComponentMarshaler interface {
	// AppendComponent serialises c, appending to dst.
	AppendComponent(dst []byte, c Component) ([]byte, error)
}

var (
	_ ComponentMarshaler = deweyCodec{}
	_ ComponentMarshaler = cohenCodec{}
	_ ComponentMarshaler = ordpathCodec{}
	_ ComponentMarshaler = qedPrefixCodec{}
	_ ComponentMarshaler = cdbsPrefixCodec{}
)

// AppendComponent writes the ordinal in the UTF-8-style multi-byte
// container DeweyID uses.
func (deweyCodec) AppendComponent(dst []byte, c Component) ([]byte, error) {
	v, ok := c.(int)
	if !ok {
		return nil, fmt.Errorf("prefix: dewey component has type %T", c)
	}
	l, err := deweyid.New(v)
	if err != nil {
		return nil, err
	}
	return append(dst, l.EncodeUTF8()...), nil
}

// AppendComponent writes the Cohen self label: ordinal−1 one-bits and
// a zero, packed MSB-first. Repeat builds the run of ones whole bytes
// at a time (the old per-bit AppendBit loop was quadratic in the
// ordinal).
func (cohenCodec) AppendComponent(dst []byte, c Component) ([]byte, error) {
	v, ok := c.(int)
	if !ok {
		return nil, fmt.Errorf("prefix: cohen component has type %T", c)
	}
	return bitstr.Repeat(1, v-1).AppendBit(0).AppendTo(dst), nil
}

// AppendComponent writes the already-encoded ORDPATH component bits.
func (ordpathCodec) AppendComponent(dst []byte, c Component) ([]byte, error) {
	b, ok := c.(bitstr.BitString)
	if !ok {
		return nil, fmt.Errorf("prefix: ordpath component has type %T", c)
	}
	return b.AppendTo(dst), nil
}

// AppendComponent writes the QED code in its separator-terminated
// 2-bit packing.
func (qedPrefixCodec) AppendComponent(dst []byte, c Component) ([]byte, error) {
	code, ok := c.(qed.Code)
	if !ok {
		return nil, fmt.Errorf("prefix: qed component has type %T", c)
	}
	return append(dst, qed.Marshal([]qed.Code{code})...), nil
}

// AppendComponent writes the CDBS code bits with a length prefix.
func (cdbsPrefixCodec) AppendComponent(dst []byte, c Component) ([]byte, error) {
	b, ok := c.(bitstr.BitString)
	if !ok {
		return nil, fmt.Errorf("prefix: cdbs component has type %T", c)
	}
	return b.AppendTo(dst), nil
}
