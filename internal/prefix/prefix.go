package prefix

import (
	"errors"
	"fmt"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// Labeling is a prefix-labeled document: every node stores its full
// label, the sequence of self components from the root. The root's
// label is the empty sequence.
type Labeling struct {
	codec  ComponentCodec
	tree   *scheme.Tree
	labels [][]Component
}

var _ scheme.Labeling = (*Labeling)(nil)

// Build returns a scheme.Builder for the given component codec.
func Build(codec ComponentCodec) scheme.Builder {
	return func(doc *xmltree.Document) (scheme.Labeling, error) {
		return New(codec, doc)
	}
}

// New labels doc with the given component codec.
func New(codec ComponentCodec, doc *xmltree.Document) (*Labeling, error) {
	tree := scheme.NewTree(doc)
	l := &Labeling{
		codec:  codec,
		tree:   tree,
		labels: make([][]Component, tree.Len()),
	}
	order := tree.PreOrder()
	if len(order) == 0 {
		return nil, errors.New("prefix: empty tree")
	}
	l.labels[order[0]] = nil // root: empty label
	if err := l.assignChildren(order[0]); err != nil {
		return nil, err
	}
	return l, nil
}

// assignChildren gives every child of v a fresh initial self label and
// recurses.
func (l *Labeling) assignChildren(v int) error {
	kids := l.tree.Children[v]
	if len(kids) == 0 {
		return nil
	}
	selfs, err := l.codec.Initial(len(kids))
	if err != nil {
		return err
	}
	for i, c := range kids {
		l.labels[c] = extend(l.labels[v], selfs[i])
		if err := l.assignChildren(c); err != nil {
			return err
		}
	}
	return nil
}

// extend returns base ++ [self] in fresh storage.
func extend(base []Component, self Component) []Component {
	out := make([]Component, 0, len(base)+1)
	out = append(out, base...)
	return append(out, self)
}

// Name returns e.g. "QED-Prefix".
func (l *Labeling) Name() string { return l.codec.Name() }

// Len returns the node count.
func (l *Labeling) Len() int { return l.tree.Len() }

// Tree exposes the structural mirror.
func (l *Labeling) Tree() *scheme.Tree { return l.tree }

// Label returns v's full label (shared storage; do not mutate).
func (l *Labeling) Label(v int) []Component { return l.labels[v] }

// Level is the label length plus one (the root's empty label is level
// 1).
func (l *Labeling) Level(v int) int { return len(l.labels[v]) + 1 }

// compareLabels orders labels in document order: componentwise with a
// proper prefix (ancestor) first.
func (l *Labeling) compareLabels(a, b []Component) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := l.codec.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// IsAncestor reports whether u's label is a proper prefix of v's.
func (l *Labeling) IsAncestor(u, v int) bool {
	lu, lv := l.labels[u], l.labels[v]
	if len(lu) >= len(lv) {
		return false
	}
	for i := range lu {
		if l.codec.Compare(lu[i], lv[i]) != 0 {
			return false
		}
	}
	return true
}

// IsParent reports whether removing v's final component yields u's
// label.
func (l *Labeling) IsParent(u, v int) bool {
	return len(l.labels[v]) == len(l.labels[u])+1 && l.IsAncestor(u, v)
}

// IsSibling reports distinct labels of equal length sharing all but
// the last component.
func (l *Labeling) IsSibling(u, v int) bool {
	lu, lv := l.labels[u], l.labels[v]
	if len(lu) != len(lv) || len(lu) == 0 {
		return false
	}
	for i := 0; i < len(lu)-1; i++ {
		if l.codec.Compare(lu[i], lv[i]) != 0 {
			return false
		}
	}
	return l.codec.Compare(lu[len(lu)-1], lv[len(lv)-1]) != 0
}

// Before reports document order by label comparison.
func (l *Labeling) Before(u, v int) bool {
	return l.compareLabels(l.labels[u], l.labels[v]) < 0
}

// TotalLabelBits sums the component storage of every live label.
func (l *Labeling) TotalLabelBits() int64 {
	var total int64
	for v, lab := range l.labels {
		if !l.tree.Alive(v) {
			continue
		}
		for _, c := range lab {
			total += int64(l.codec.Bits(c))
		}
	}
	return total
}

// DeleteSubtree removes node v and its descendants without touching
// any remaining label (Section 5.2.1).
func (l *Labeling) DeleteSubtree(v int) (int, error) {
	return l.tree.RemoveSubtree(v)
}

// InsertChildAt inserts a fresh leaf element as the pos-th child of
// parent. Dynamic codecs never touch existing labels; static codecs
// re-label the following siblings and (because labels are prefixes)
// every node in their subtrees, whose count is returned.
func (l *Labeling) InsertChildAt(parent, pos int) (int, int, error) {
	if err := l.tree.ValidateInsert(parent, pos); err != nil {
		return 0, 0, err
	}
	kids := l.tree.Children[parent]
	var left, right Component
	if pos > 0 {
		left = l.selfOf(kids[pos-1])
	}
	if pos < len(kids) {
		right = l.selfOf(kids[pos])
	}
	self, err := l.codec.Between(left, right)
	if err == nil {
		id := l.tree.AddChild(parent, pos)
		l.labels = append(l.labels, extend(l.labels[parent], self))
		return id, 0, nil
	}
	if !errors.Is(err, ErrNoRoom) {
		return 0, 0, fmt.Errorf("prefix: %w", err)
	}
	// Static codec: renumber the parent's children and rebuild the
	// labels of every shifted subtree.
	id := l.tree.AddChild(parent, pos)
	l.labels = append(l.labels, nil)
	kids = l.tree.Children[parent]
	selfs, err := l.codec.Initial(len(kids))
	if err != nil {
		return 0, 0, err
	}
	relabeled := 0
	for i, c := range kids {
		newLabel := extend(l.labels[parent], selfs[i])
		if c == id {
			// The fresh node (a leaf) gets its first label; that is
			// not a re-label.
			l.labels[c] = newLabel
			continue
		}
		if l.compareLabels(l.labels[c], newLabel) == 0 {
			continue
		}
		l.labels[c] = newLabel
		relabeled++
		l.relabelSubtree(c, &relabeled)
	}
	return id, relabeled, nil
}

// relabelSubtree rebuilds the labels of v's descendants from v's
// (already updated) label, counting each change.
func (l *Labeling) relabelSubtree(v int, count *int) {
	for _, c := range l.tree.Children[v] {
		self := l.selfOf(c)
		l.labels[c] = extend(l.labels[v], self)
		*count++
		l.relabelSubtree(c, count)
	}
}

// selfOf returns v's final component.
func (l *Labeling) selfOf(v int) Component {
	lab := l.labels[v]
	return lab[len(lab)-1]
}

// InsertSiblingBefore inserts a fresh element immediately before v.
func (l *Labeling) InsertSiblingBefore(v int) (int, int, error) {
	parent, pos, err := l.tree.SiblingPosition(v)
	if err != nil {
		return 0, 0, err
	}
	return l.InsertChildAt(parent, pos)
}

// MarshalLabel serialises node v's full label: its components
// concatenated in the codec's storage form. It implements
// scheme.LabelMarshaler.
func (l *Labeling) MarshalLabel(v int) ([]byte, error) {
	if !l.tree.Alive(v) {
		return nil, fmt.Errorf("%w: %d", scheme.ErrBadNode, v)
	}
	m, ok := l.codec.(ComponentMarshaler)
	if !ok {
		return nil, fmt.Errorf("prefix: codec %s cannot marshal components", l.codec.Name())
	}
	var out []byte
	var err error
	for _, c := range l.labels[v] {
		out, err = m.AppendComponent(out, c)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CloneLabeling returns an independent deep copy, implementing
// scheme.Cloner. Label slices are write-once (every assignment goes
// through extend, which allocates fresh storage), so the outer slice
// is copied and the component sequences are shared.
func (l *Labeling) CloneLabeling() scheme.Labeling {
	return &Labeling{
		codec:  l.codec,
		tree:   l.tree.Clone(),
		labels: append([][]Component(nil), l.labels...),
	}
}

// InsertSubtrees inserts fragments shaped like the given element
// trees as consecutive children of parent starting at position pos.
// The fragment roots' self labels are laid into the one sibling gap
// with a single NBetween call (descendants always get fresh initial
// labels); a static codec whose gap cannot hold the run falls back to
// sequential insertion, paying the per-fragment re-label cost a loop
// of single inserts would. It implements scheme.BatchInserter.
func (l *Labeling) InsertSubtrees(parent, pos int, shapes []*xmltree.Node) ([][]int, int, error) {
	if len(shapes) == 0 {
		return nil, 0, nil
	}
	for _, shape := range shapes {
		if shape == nil {
			return nil, 0, errors.New("prefix: nil shape")
		}
	}
	if err := l.tree.ValidateInsert(parent, pos); err != nil {
		return nil, 0, err
	}
	kids := l.tree.Children[parent]
	var left, right Component
	if pos > 0 {
		left = l.selfOf(kids[pos-1])
	}
	if pos < len(kids) {
		right = l.selfOf(kids[pos])
	}
	selfs, err := l.codec.NBetween(left, right, len(shapes))
	if errors.Is(err, ErrNoRoom) {
		ids := make([][]int, len(shapes))
		relabeled := 0
		for k, shape := range shapes {
			fids, rl, err := l.InsertSubtree(parent, pos+k, shape)
			if err != nil {
				return nil, 0, err
			}
			ids[k] = fids
			relabeled += rl
		}
		return ids, relabeled, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("prefix: %w", err)
	}
	ids := make([][]int, len(shapes))
	for k, shape := range shapes {
		rootID := l.tree.AddChild(parent, pos+k)
		l.labels = append(l.labels, extend(l.labels[parent], selfs[k]))
		fids := []int{rootID}
		var add func(pid int, n *xmltree.Node) error
		add = func(pid int, n *xmltree.Node) error {
			if len(n.Children) == 0 {
				return nil
			}
			kidSelfs, err := l.codec.Initial(len(n.Children))
			if err != nil {
				return err
			}
			for i, c := range n.Children {
				id := l.tree.AddChild(pid, i)
				l.labels = append(l.labels, extend(l.labels[pid], kidSelfs[i]))
				fids = append(fids, id)
				if err := add(id, c); err != nil {
					return err
				}
			}
			return nil
		}
		if err := add(rootID, shape); err != nil {
			return nil, 0, err
		}
		ids[k] = fids
	}
	return ids, 0, nil
}

// InsertSubtree inserts a fragment shaped like the given element tree
// as the pos-th child of parent. The fragment root's self label is
// created in the gap (re-labeling followers only under static codecs);
// its descendants receive fresh initial labels, which can never
// disturb existing nodes.
func (l *Labeling) InsertSubtree(parent, pos int, shape *xmltree.Node) ([]int, int, error) {
	if shape == nil {
		return nil, 0, errors.New("prefix: nil shape")
	}
	rootID, relabeled, err := l.InsertChildAt(parent, pos)
	if err != nil {
		return nil, 0, err
	}
	ids := []int{rootID}
	var add func(pid int, n *xmltree.Node) error
	add = func(pid int, n *xmltree.Node) error {
		if len(n.Children) == 0 {
			return nil
		}
		selfs, err := l.codec.Initial(len(n.Children))
		if err != nil {
			return err
		}
		for i, c := range n.Children {
			id := l.tree.AddChild(pid, i)
			l.labels = append(l.labels, extend(l.labels[pid], selfs[i]))
			ids = append(ids, id)
			if err := add(id, c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := add(rootID, shape); err != nil {
		return nil, 0, err
	}
	// Re-establish preorder over the fragment ids: add() appended
	// children-first per level, which already matches preorder for a
	// depth-first walk.
	return ids, relabeled, nil
}
