package prefix

import (
	"errors"
	"testing"

	"repro/internal/ordpath"
	"repro/internal/xmltree"
)

func doc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString("<r><a/><b><c/></b><d/></r>")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAllCodecsBasicRelationships(t *testing.T) {
	for _, codec := range AllCodecs() {
		l, err := New(codec, doc(t))
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		// ids: r=0 a=1 b=2 c=3 d=4
		if !l.IsAncestor(0, 3) || !l.IsAncestor(2, 3) || l.IsAncestor(1, 3) {
			t.Errorf("%s: ancestor", codec.Name())
		}
		if !l.IsParent(2, 3) || l.IsParent(0, 3) {
			t.Errorf("%s: parent", codec.Name())
		}
		if !l.IsSibling(1, 4) || l.IsSibling(0, 1) || l.IsSibling(3, 4) {
			t.Errorf("%s: sibling", codec.Name())
		}
		if !l.Before(1, 2) || !l.Before(3, 4) || l.Before(4, 0) {
			t.Errorf("%s: order", codec.Name())
		}
		if l.Level(0) != 1 || l.Level(3) != 3 {
			t.Errorf("%s: level", codec.Name())
		}
		if l.TotalLabelBits() <= 0 {
			t.Errorf("%s: no label storage", codec.Name())
		}
		if got := len(l.Label(3)); got != 2 {
			t.Errorf("%s: label length %d", codec.Name(), got)
		}
	}
}

func TestDeweyRelabelScope(t *testing.T) {
	// Inserting before b must re-label b, its child c, and d — but
	// not a.
	l, err := New(Dewey(), doc(t))
	if err != nil {
		t.Fatal(err)
	}
	aLabel := l.Label(1)
	_, relabeled, err := l.InsertChildAt(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if relabeled != 3 {
		t.Errorf("relabeled = %d, want 3 (b, c, d)", relabeled)
	}
	if l.compareLabels(l.Label(1), aLabel) != 0 {
		t.Error("a's label changed")
	}
	// Appending at the end is free for DeweyID.
	l2, _ := New(Dewey(), doc(t))
	_, relabeled, err = l2.InsertChildAt(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if relabeled != 0 {
		t.Errorf("append relabeled = %d, want 0", relabeled)
	}
}

func TestDynamicCodecsNoRelabel(t *testing.T) {
	for _, codec := range AllCodecs() {
		if !codec.Dynamic() {
			continue
		}
		l, err := New(codec, doc(t))
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos <= 3; pos++ {
			_, relabeled, err := l.InsertChildAt(0, pos)
			if err != nil {
				t.Fatalf("%s at %d: %v", codec.Name(), pos, err)
			}
			if relabeled != 0 {
				t.Errorf("%s at %d: relabeled %d", codec.Name(), pos, relabeled)
			}
		}
	}
}

func TestOrdPathCodecEncodedForm(t *testing.T) {
	c := OrdPath(ordpath.Table1)
	comps, err := c.Initial(3)
	if err != nil {
		t.Fatal(err)
	}
	// Components are encoded bitstrings, in sibling order.
	for i := 1; i < len(comps); i++ {
		if c.Compare(comps[i-1], comps[i]) >= 0 {
			t.Fatalf("initial comps out of order at %d", i)
		}
	}
	// Insertion between adjacent odds must caret in (decode +
	// arithmetic + re-encode) and land strictly between.
	m, err := c.Between(comps[0], comps[1])
	if err != nil {
		t.Fatal(err)
	}
	if !(c.Compare(comps[0], m) < 0 && c.Compare(m, comps[1]) < 0) {
		t.Error("careted component out of order")
	}
	// The careted form decodes back to an even-prefixed self label.
	self, err := c.(ordpathCodec).decodeSelf(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := self.Validate(); err != nil {
		t.Errorf("careted self invalid: %v", err)
	}
	if len(self) < 2 {
		t.Errorf("expected caret group, got %v", self)
	}
	if c.Bits(m) != m.(interface{ Len() int }).Len() {
		t.Error("Bits != encoded length")
	}
}

func TestDeweyNoRoomIsErrNoRoom(t *testing.T) {
	c := Dewey()
	comps, err := c.Initial(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Between(comps[0], comps[1]); !errors.Is(err, ErrNoRoom) {
		t.Errorf("err = %v, want ErrNoRoom", err)
	}
	// Appending and gap-splitting work.
	if m, err := c.Between(comps[1], nil); err != nil || m.(int) != 3 {
		t.Errorf("append = %v, %v", m, err)
	}
	if m, err := c.Between(nil, nil); err != nil || m.(int) != 1 {
		t.Errorf("first = %v, %v", m, err)
	}
}

func TestCohenBitsLinear(t *testing.T) {
	c := Cohen()
	comps, _ := c.Initial(5)
	if c.Bits(comps[4]) != 5 || c.Bits(comps[0]) != 1 {
		t.Errorf("Cohen bits = %d, %d", c.Bits(comps[0]), c.Bits(comps[4]))
	}
}

func TestUTF8ContainerBytes(t *testing.T) {
	cases := []struct{ bits, want int }{
		{1, 1}, {7, 1}, {8, 2}, {11, 2}, {12, 3}, {16, 3}, {17, 4}, {26, 5}, {27, 6},
	}
	for _, cse := range cases {
		if got := utf8ContainerBytes(cse.bits); got != cse.want {
			t.Errorf("utf8ContainerBytes(%d) = %d, want %d", cse.bits, got, cse.want)
		}
	}
}

func TestEmptyDocumentRejected(t *testing.T) {
	if _, err := New(Dewey(), &xmltree.Document{}); err == nil {
		t.Error("empty document accepted")
	}
}
