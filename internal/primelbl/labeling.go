package primelbl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// Labeling adapts Scheme to the scheme.Labeling contract ("Prime" in
// the paper's figures).
type Labeling struct {
	s    *Scheme
	tree *scheme.Tree
}

var _ scheme.Labeling = (*Labeling)(nil)

// BuildLabeling is the scheme.Builder for Prime.
func BuildLabeling(doc *xmltree.Document) (scheme.Labeling, error) {
	return NewLabeling(doc)
}

// NewLabeling labels doc with the prime scheme.
func NewLabeling(doc *xmltree.Document) (*Labeling, error) {
	tree := scheme.NewTree(doc)
	s, err := Build(tree.Parents)
	if err != nil {
		return nil, err
	}
	return &Labeling{s: s, tree: tree}, nil
}

// Name returns "Prime".
func (l *Labeling) Name() string { return "Prime" }

// Len returns the live node count.
func (l *Labeling) Len() int { return l.tree.Len() }

// Tree exposes the structural mirror.
func (l *Labeling) Tree() *scheme.Tree { return l.tree }

// Scheme exposes the underlying prime machinery.
func (l *Labeling) Scheme() *Scheme { return l.s }

// CloneLabeling returns an independent deep copy, implementing
// scheme.Cloner.
func (l *Labeling) CloneLabeling() scheme.Labeling {
	return &Labeling{s: l.s.Clone(), tree: l.tree.Clone()}
}

// Level returns the node depth. Prime labels do not encode the level;
// like the original implementation the depth is tracked beside them.
func (l *Labeling) Level(v int) int { return l.tree.Depths[v] }

// IsAncestor tests divisibility of the product labels.
func (l *Labeling) IsAncestor(u, v int) bool { return l.s.IsAncestor(u, v) }

// IsParent tests label(v)/self(v) == label(u).
func (l *Labeling) IsParent(u, v int) bool { return l.s.IsParent(u, v) }

// IsSibling reports whether u and v are distinct nodes with the same
// quotient label(x)/self(x), i.e. the same parent label.
func (l *Labeling) IsSibling(u, v int) bool {
	if u == v || u == 0 || v == 0 {
		return false
	}
	var qu, qv big.Int
	qu.Quo(l.s.labels[u], big.NewInt(l.s.selfPrimes[u]))
	qv.Quo(l.s.labels[v], big.NewInt(l.s.selfPrimes[v]))
	return qu.Cmp(&qv) == 0
}

// Before derives document order from the SC values.
func (l *Labeling) Before(u, v int) bool { return l.s.Before(u, v) }

// TotalLabelBits charges each node its product label and its
// self_label (the parent test label(v)/self(v) needs both stored),
// plus the shared SC values.
func (l *Labeling) TotalLabelBits() int64 {
	var total int64
	for i := 0; i < l.s.Len(); i++ {
		if !l.tree.Alive(i) {
			continue
		}
		total += int64(l.s.LabelBits(i))
		total += int64(bitLen64(l.s.SelfPrime(i)))
	}
	return total + int64(l.s.SCBits())
}

// DeleteSubtree removes node v and its descendants. Prime's SC values
// and the surviving labels are untouched: the relative ordering
// numbers of the remaining nodes keep their order.
func (l *Labeling) DeleteSubtree(v int) (int, error) {
	return l.tree.RemoveSubtree(v)
}

// bitLen64 returns the bit length of v (min 1).
func bitLen64(v int64) int {
	n := 1
	for v >>= 1; v > 0; v >>= 1 {
		n++
	}
	return n
}

// InsertChildAt inserts a fresh element as the pos-th child of parent.
// Prime never re-labels: the returned count is the number of SC values
// recomputed (the Table 4 quantity for Prime).
func (l *Labeling) InsertChildAt(parent, pos int) (int, int, error) {
	if err := l.tree.ValidateInsert(parent, pos); err != nil {
		return 0, 0, err
	}
	kids := l.tree.Children[parent]
	var docPos int
	switch {
	case pos < len(kids):
		docPos = int(l.s.Ordering(kids[pos])) - 1
	case len(kids) > 0:
		docPos = int(l.s.Ordering(l.tree.SubtreeLast(kids[len(kids)-1])))
	default:
		docPos = int(l.s.Ordering(parent))
	}
	recalcs, err := l.s.InsertBefore(docPos, parent)
	if err != nil {
		return 0, 0, err
	}
	id := l.tree.AddChild(parent, pos)
	if id != l.s.Len()-1 {
		return 0, 0, fmt.Errorf("primelbl: id drift: tree %d vs scheme %d", id, l.s.Len()-1)
	}
	return id, recalcs, nil
}

// InsertSiblingBefore inserts a fresh element immediately before v.
func (l *Labeling) InsertSiblingBefore(v int) (int, int, error) {
	parent, pos, err := l.tree.SiblingPosition(v)
	if err != nil {
		return 0, 0, err
	}
	return l.InsertChildAt(parent, pos)
}

// Ordering returns node i's current 1-based ordering number.
func (s *Scheme) Ordering(i int) int64 { return s.ordering[i] }

// MarshalLabel serialises node v's Prime label: the product label's
// big-endian bytes, length-prefixed, followed by the self prime. It
// implements scheme.LabelMarshaler.
func (l *Labeling) MarshalLabel(v int) ([]byte, error) {
	if !l.tree.Alive(v) {
		return nil, fmt.Errorf("%w: %d", scheme.ErrBadNode, v)
	}
	product := l.s.Label(v).Bytes()
	out := binary.AppendUvarint(nil, uint64(len(product)))
	out = append(out, product...)
	return binary.AppendUvarint(out, uint64(l.s.SelfPrime(v))), nil
}

// InsertSubtree inserts a fragment shaped like the given element tree
// as the pos-th child of parent, node by node (Prime has no cheaper
// bulk path: every node needs a fresh prime and the SC values shift
// regardless). The returned count accumulates SC recomputations.
func (l *Labeling) InsertSubtree(parent, pos int, shape *xmltree.Node) ([]int, int, error) {
	if shape == nil {
		return nil, 0, errors.New("primelbl: nil shape")
	}
	var ids []int
	total := 0
	var add func(p, at int, n *xmltree.Node) error
	add = func(p, at int, n *xmltree.Node) error {
		id, recalcs, err := l.InsertChildAt(p, at)
		if err != nil {
			return err
		}
		total += recalcs
		ids = append(ids, id)
		for i, c := range n.Children {
			if err := add(id, i, c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := add(parent, pos, shape); err != nil {
		return nil, 0, err
	}
	return ids, total, nil
}
