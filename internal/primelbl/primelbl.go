// Package primelbl implements the prime-number labeling baseline (Wu,
// Lee and Hsu, ICDE 2004) that the CDBS paper benchmarks as "Prime".
//
// Each non-root node receives a distinct prime as its self label; a
// node's label is the product of the self labels on its root path
// (the root is labeled 1). Ancestorship is divisibility:
// u ancestor-of v iff label(v) mod label(u) == 0. Document order is
// kept *outside* the labels in Simultaneous Congruence (SC) values
// built with the Chinese Remainder Theorem: one SC value per group of
// five nodes, with SC ≡ ordering(node) (mod self(node)). An insertion
// shifts the ordering numbers of every following node, so the SC
// values of all their groups must be recomputed — that recomputation,
// not re-labeling, is Prime's update cost (Table 4 and Figure 7 of the
// CDBS paper).
//
// Fidelity note: recovering an ordering number from SC mod p is exact
// only while the ordering number is below the node's prime, a
// restriction inherited from the original scheme. To keep query
// results correct on large documents while still paying the big-int
// arithmetic cost the paper measures, OrderKey performs the SC modular
// reduction (the honest cost) and falls back to the stored ordering
// number for the comparison value itself.
package primelbl

import (
	"errors"
	"fmt"
	"math/big"
)

// GroupSize is the number of nodes sharing one SC value; the paper
// states "Prime uses each SC value for every five nodes".
const GroupSize = 5

// ErrBadTree reports a malformed parent vector.
var ErrBadTree = errors.New("primelbl: malformed parent vector")

// Scheme holds the prime labels and SC values for one document whose
// nodes are identified by document-order index 0..n-1.
type Scheme struct {
	selfPrimes []int64    // self label per node
	labels     []*big.Int // product label per node
	parents    []int      // parent index per node (-1 for the root)
	ordering   []int64    // current ordering number per node (1-based)
	sc         []*big.Int // one SC value per group of GroupSize nodes

	scRecalcs int64 // cumulative SC recomputations
}

// Build labels a tree given as a parent vector in document order:
// parents[i] is the index of node i's parent and must be < i;
// parents[0] must be -1 (the root).
func Build(parents []int) (*Scheme, error) {
	n := len(parents)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadTree)
	}
	if parents[0] != -1 {
		return nil, fmt.Errorf("%w: parents[0] = %d, want -1", ErrBadTree, parents[0])
	}
	s := &Scheme{
		selfPrimes: make([]int64, n),
		labels:     make([]*big.Int, n),
		parents:    append([]int(nil), parents...),
		ordering:   make([]int64, n),
	}
	primes := firstPrimes(n - 1)
	s.selfPrimes[0] = 1
	s.labels[0] = big.NewInt(1)
	for i := 1; i < n; i++ {
		p := parents[i]
		if p < 0 || p >= i {
			return nil, fmt.Errorf("%w: parents[%d] = %d", ErrBadTree, i, p)
		}
		s.selfPrimes[i] = primes[i-1]
		s.labels[i] = new(big.Int).Mul(s.labels[p], big.NewInt(primes[i-1]))
	}
	for i := 0; i < n; i++ {
		s.ordering[i] = int64(i + 1)
	}
	s.sc = make([]*big.Int, (n+GroupSize-1)/GroupSize)
	for g := range s.sc {
		s.recomputeSC(g)
	}
	return s, nil
}

// Len returns the number of nodes.
func (s *Scheme) Len() int { return len(s.labels) }

// SelfPrime returns node i's self label.
func (s *Scheme) SelfPrime(i int) int64 { return s.selfPrimes[i] }

// Label returns node i's product label. The caller must not mutate it.
func (s *Scheme) Label(i int) *big.Int { return s.labels[i] }

// LabelBits returns the bit length of node i's label, the quantity
// Figure 5 charges Prime for.
func (s *Scheme) LabelBits(i int) int {
	if i == 0 {
		return 1
	}
	return s.labels[i].BitLen()
}

// SCBits returns the total bit length of all SC values; amortised over
// nodes this is Prime's ordering storage.
func (s *Scheme) SCBits() int {
	total := 0
	for _, v := range s.sc {
		if v != nil {
			total += v.BitLen()
		}
	}
	return total
}

// IsAncestor reports whether u is a proper ancestor of v using only
// the labels: label(v) mod label(u) == 0. This is the modular
// arithmetic whose cost dominates Prime's query times in Figure 6.
func (s *Scheme) IsAncestor(u, v int) bool {
	if u == v {
		return false
	}
	lu, lv := s.labels[u], s.labels[v]
	if lu.Cmp(lv) >= 0 {
		return false
	}
	var m big.Int
	return m.Mod(lv, lu).Sign() == 0
}

// IsParent reports whether u is the parent of v:
// label(v) / self(v) == label(u).
func (s *Scheme) IsParent(u, v int) bool {
	if v == 0 {
		return false
	}
	var q big.Int
	q.Quo(s.labels[v], big.NewInt(s.selfPrimes[v]))
	return q.Cmp(s.labels[u]) == 0
}

// OrderKey returns node i's ordering number the way Prime derives it:
// SC(group(i)) mod self(i). The big-int reduction is always performed
// (it is the measured cost); see the package comment on the returned
// value.
func (s *Scheme) OrderKey(i int) int64 {
	g := i / GroupSize
	var m big.Int
	derived := m.Mod(s.sc[g], big.NewInt(s.selfPrimes[i])).Int64()
	if derived == s.ordering[i]%s.selfPrimes[i] && s.ordering[i] < s.selfPrimes[i] {
		return derived
	}
	return s.ordering[i]
}

// Before reports document order between two nodes via their SC-derived
// ordering numbers.
func (s *Scheme) Before(u, v int) bool { return s.OrderKey(u) < s.OrderKey(v) }

// recomputeSC rebuilds the SC value of group g with the CRT:
// x ≡ ordering(i) (mod self(i)) for every node i in the group. The
// root (self label 1) contributes the trivial congruence.
func (s *Scheme) recomputeSC(g int) {
	lo := g * GroupSize
	hi := lo + GroupSize
	if hi > len(s.labels) {
		hi = len(s.labels)
	}
	// M = product of the moduli.
	M := big.NewInt(1)
	for i := lo; i < hi; i++ {
		if s.selfPrimes[i] > 1 {
			M.Mul(M, big.NewInt(s.selfPrimes[i]))
		}
	}
	x := new(big.Int)
	var mi, inv, term big.Int
	for i := lo; i < hi; i++ {
		p := s.selfPrimes[i]
		if p <= 1 {
			continue
		}
		pb := big.NewInt(p)
		mi.Quo(M, pb)
		if inv.ModInverse(&mi, pb) == nil {
			// Distinct primes guarantee invertibility; reaching here
			// is a programming error.
			panic(fmt.Sprintf("primelbl: no inverse for group %d node %d", g, i))
		}
		term.Mul(&mi, &inv)
		term.Mul(&term, big.NewInt(s.ordering[i]%p))
		x.Add(x, &term)
	}
	x.Mod(x, M)
	for g >= len(s.sc) {
		s.sc = append(s.sc, nil)
	}
	s.sc[g] = x
	s.scRecalcs++
}

// InsertBefore simulates inserting one new node at document position
// pos (0-based: the new node takes ordering pos+1). All following
// nodes' ordering numbers shift by one and every group touching them —
// plus the new node's own group — has its SC value recomputed. It
// returns the number of SC recalculations, the quantity Table 4
// reports for Prime. Labels are untouched: Prime never re-labels.
//
// The new node is appended with the next unused prime as a child of
// parent (an index in 0..Len-1).
func (s *Scheme) InsertBefore(pos, parent int) (scRecalcs int, err error) {
	n := len(s.labels)
	if pos < 0 || pos > n {
		return 0, fmt.Errorf("primelbl: position %d out of range [0,%d]", pos, n)
	}
	if parent < 0 || parent >= n {
		return 0, fmt.Errorf("primelbl: parent %d out of range", parent)
	}
	// Shift the ordering numbers of following nodes.
	for i := 0; i < n; i++ {
		if s.ordering[i] >= int64(pos+1) {
			s.ordering[i]++
		}
	}
	// Append the new node (index n, prime p_n).
	p := nthPrimeFrom(s.selfPrimes)
	s.selfPrimes = append(s.selfPrimes, p)
	s.labels = append(s.labels, new(big.Int).Mul(s.labels[parent], big.NewInt(p)))
	s.parents = append(s.parents, parent)
	s.ordering = append(s.ordering, int64(pos+1))

	// Recompute the SC value of every group containing a node whose
	// ordering number changed, plus the new node's group.
	dirty := make(map[int]bool)
	for i := 0; i <= n; i++ {
		if s.ordering[i] >= int64(pos+1) {
			dirty[i/GroupSize] = true
		}
	}
	for g := range dirty {
		s.recomputeSC(g)
	}
	return len(dirty), nil
}

// TotalSCRecalcs returns the cumulative number of SC recomputations
// performed, including the initial build.
func (s *Scheme) TotalSCRecalcs() int64 { return s.scRecalcs }

// Clone returns an independent deep copy of the scheme state. The
// big.Int label and SC values are never mutated after assignment
// (recomputeSC installs a freshly allocated value), so their pointer
// slices are copied shallowly; the ordering numbers are shifted in
// place by InsertBefore and are copied deeply.
func (s *Scheme) Clone() *Scheme {
	return &Scheme{
		selfPrimes: append([]int64(nil), s.selfPrimes...),
		labels:     append([]*big.Int(nil), s.labels...),
		parents:    append([]int(nil), s.parents...),
		ordering:   append([]int64(nil), s.ordering...),
		sc:         append([]*big.Int(nil), s.sc...),
		scRecalcs:  s.scRecalcs,
	}
}

// firstPrimes returns the first n primes using a sieve sized with the
// prime-counting estimate.
func firstPrimes(n int) []int64 {
	if n <= 0 {
		return nil
	}
	// Upper bound for the n-th prime: n(ln n + ln ln n) for n >= 6.
	bound := 15
	if n >= 6 {
		f := float64(n)
		ln := logf(f)
		bound = int(f*(ln+logf(ln))) + 10
	}
	for {
		primes := sieve(bound, n)
		if len(primes) >= n {
			return primes[:n]
		}
		bound *= 2
	}
}

// sieve collects up to limit primes below bound.
func sieve(bound, limit int) []int64 {
	composite := make([]bool, bound+1)
	var primes []int64
	for i := 2; i <= bound && len(primes) < limit; i++ {
		if composite[i] {
			continue
		}
		primes = append(primes, int64(i))
		for j := i * i; j <= bound; j += i {
			composite[j] = true
		}
	}
	return primes
}

// nthPrimeFrom returns the smallest prime larger than every prime in
// used.
func nthPrimeFrom(used []int64) int64 {
	var max int64 = 1
	for _, p := range used {
		if p > max {
			max = p
		}
	}
	for c := max + 1; ; c++ {
		if isPrime(c) {
			return c
		}
	}
}

// isPrime is a simple trial-division test, sufficient for the
// incremental case.
func isPrime(v int64) bool {
	if v < 2 {
		return false
	}
	for d := int64(2); d*d <= v; d++ {
		if v%d == 0 {
			return false
		}
	}
	return true
}

// logf is a dependency-free natural log good enough for sieve sizing.
func logf(x float64) float64 {
	// Use the identity ln(x) = 2 artanh((x-1)/(x+1)) with a short
	// series; accurate to well under 1% for x > 1, which is all the
	// sizing needs.
	if x <= 0 {
		return 0
	}
	// Range-reduce by powers of e≈2.718281828.
	const e = 2.718281828459045
	k := 0.0
	for x > e {
		x /= e
		k++
	}
	t := (x - 1) / (x + 1)
	t2 := t * t
	sum := t
	term := t
	for i := 3; i < 19; i += 2 {
		term *= t2
		sum += term / float64(i)
	}
	return k + 2*sum
}
