package primelbl

import (
	"math/rand"
	"testing"
)

// sampleTree is the 9-node tree of Figure 2/3 of the CDBS paper
// (root with children; some grandchildren), as a parent vector in
// document order.
//
//	0 root
//	├─ 1        ├─ 4        ├─ 6      └─ 8
//	├─ 2,3 (under 1)        └─ 5 (under 4)   └─ 7 (under 6)
var sampleTree = []int{-1, 0, 1, 1, 0, 4, 0, 6, 0}

func buildSample(t *testing.T) *Scheme {
	t.Helper()
	s, err := Build(sampleTree)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty tree accepted")
	}
	if _, err := Build([]int{0}); err == nil {
		t.Error("root with parent accepted")
	}
	if _, err := Build([]int{-1, 5}); err == nil {
		t.Error("forward parent accepted")
	}
}

func TestSelfPrimesDistinct(t *testing.T) {
	s := buildSample(t)
	seen := map[int64]bool{}
	for i := 1; i < s.Len(); i++ {
		p := s.SelfPrime(i)
		if p < 2 || seen[p] {
			t.Errorf("node %d: self prime %d invalid or duplicated", i, p)
		}
		seen[p] = true
	}
	if s.SelfPrime(0) != 1 {
		t.Errorf("root self = %d, want 1", s.SelfPrime(0))
	}
}

func TestAncestorByDivisibility(t *testing.T) {
	s := buildSample(t)
	type rel struct {
		u, v int
		want bool
	}
	cases := []rel{
		{0, 1, true}, {0, 2, true}, {1, 2, true}, {1, 3, true},
		{0, 5, true}, {4, 5, true}, {6, 7, true},
		{1, 4, false}, {2, 3, false}, {4, 7, false}, {5, 4, false},
		{1, 1, false},
	}
	for _, c := range cases {
		if got := s.IsAncestor(c.u, c.v); got != c.want {
			t.Errorf("IsAncestor(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestParentByDivision(t *testing.T) {
	s := buildSample(t)
	for v := 1; v < s.Len(); v++ {
		for u := 0; u < s.Len(); u++ {
			want := sampleTree[v] == u
			if got := s.IsParent(u, v); got != want {
				t.Errorf("IsParent(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	if s.IsParent(0, 0) {
		t.Error("root has a parent")
	}
}

func TestDocumentOrderViaSC(t *testing.T) {
	s := buildSample(t)
	for i := 0; i < s.Len(); i++ {
		for j := 0; j < s.Len(); j++ {
			if got, want := s.Before(i, j), i < j; got != want {
				t.Errorf("Before(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSmallPrimeOrderRecovery(t *testing.T) {
	// The first nodes have tiny primes (2, 3, 5); their ordering
	// numbers quickly exceed the modulus, which is exactly the
	// fallback case OrderKey must handle.
	parents := make([]int, 40)
	parents[0] = -1
	for i := 1; i < len(parents); i++ {
		parents[i] = 0
	}
	s, err := Build(parents)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < s.Len(); i++ {
		if s.OrderKey(i-1) >= s.OrderKey(i) {
			t.Fatalf("order keys not increasing at %d", i)
		}
	}
}

func TestInsertBeforeRecalcCounts(t *testing.T) {
	// Inserting before position pos in an n-node flat document must
	// recompute about ceil((affected+1)/5) SC values, where affected
	// is the count of following nodes — the 1/5 ratio of Table 4.
	parents := make([]int, 101)
	parents[0] = -1
	for i := 1; i < len(parents); i++ {
		parents[i] = 0
	}
	s, err := Build(parents)
	if err != nil {
		t.Fatal(err)
	}
	n := s.Len()
	recalcs, err := s.InsertBefore(1, 0) // nearly all nodes shift
	if err != nil {
		t.Fatal(err)
	}
	affected := n - 1 + 1 // old followers + the new node
	lo, hi := affected/GroupSize, affected/GroupSize+2
	if recalcs < lo || recalcs > hi {
		t.Errorf("recalcs = %d, want about %d", recalcs, (affected+GroupSize-1)/GroupSize)
	}
	// Order must still be fully consistent after the insertion:
	// the new node (index n) sits at document position 1.
	if !s.Before(0, n) || !s.Before(n, 1) {
		t.Error("inserted node not ordered between 0 and 1")
	}
	// Labels must be untouched for all old nodes (no re-labeling).
	if s.LabelBits(1) == 0 {
		t.Error("label vanished")
	}
}

func TestInsertBeforeValidation(t *testing.T) {
	s := buildSample(t)
	if _, err := s.InsertBefore(-1, 0); err == nil {
		t.Error("negative position accepted")
	}
	if _, err := s.InsertBefore(0, 99); err == nil {
		t.Error("bad parent accepted")
	}
}

func TestInsertAtEnd(t *testing.T) {
	s := buildSample(t)
	n := s.Len()
	recalcs, err := s.InsertBefore(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recalcs != 1 {
		t.Errorf("appending recalculated %d groups, want 1", recalcs)
	}
	if !s.Before(n-1, n) {
		t.Error("appended node not last")
	}
}

func TestLabelBitsGrowWithDepth(t *testing.T) {
	// A chain: labels are products of ever more primes, so sizes grow
	// super-linearly — the Figure 5 blow-up.
	parents := []int{-1, 0, 1, 2, 3, 4, 5, 6, 7}
	s, err := Build(parents)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < s.Len(); i++ {
		if s.LabelBits(i) <= s.LabelBits(i-1) {
			t.Errorf("label bits not strictly growing at %d", i)
		}
	}
	if s.SCBits() == 0 {
		t.Error("no SC storage")
	}
}

func TestFirstPrimes(t *testing.T) {
	got := firstPrimes(10)
	want := []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firstPrimes(10) = %v", got)
		}
	}
	if firstPrimes(0) != nil {
		t.Error("firstPrimes(0) != nil")
	}
	big := firstPrimes(10000)
	if len(big) != 10000 || big[9999] != 104729 {
		t.Errorf("10000th prime = %d, want 104729", big[len(big)-1])
	}
}

func TestRandomTreeConsistency(t *testing.T) {
	gen := rand.New(rand.NewSource(13))
	parents := make([]int, 300)
	parents[0] = -1
	for i := 1; i < len(parents); i++ {
		parents[i] = gen.Intn(i)
	}
	s, err := Build(parents)
	if err != nil {
		t.Fatal(err)
	}
	// Divisibility ancestorship must match the parent-vector truth.
	isAnc := func(u, v int) bool {
		for p := parents[v]; p != -1; p = parents[p] {
			if p == u {
				return true
			}
		}
		return false
	}
	for trial := 0; trial < 2000; trial++ {
		u, v := gen.Intn(len(parents)), gen.Intn(len(parents))
		if u == v {
			continue
		}
		if got, want := s.IsAncestor(u, v), isAnc(u, v); got != want {
			t.Fatalf("IsAncestor(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func BenchmarkIsAncestor(b *testing.B) {
	parents := make([]int, 1000)
	parents[0] = -1
	for i := 1; i < len(parents); i++ {
		parents[i] = (i - 1) / 4
	}
	s, err := Build(parents)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.IsAncestor(i%997, 999)
	}
}

func BenchmarkInsertRecalc(b *testing.B) {
	parents := make([]int, 2000)
	parents[0] = -1
	for i := 1; i < len(parents); i++ {
		parents[i] = 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Build(parents)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.InsertBefore(1, 0); err != nil {
			b.Fatal(err)
		}
	}
}
