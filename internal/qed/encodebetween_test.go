package qed

import (
	"math/bits"
	"testing"
)

// qedBoundsGrid returns a spread of valid QED bound pairs (l < r,
// either possibly open).
func qedBoundsGrid() [][2]Code {
	return [][2]Code{
		{Empty, Empty},
		{MustParse("2"), Empty},
		{Empty, MustParse("2")},
		{MustParse("12"), MustParse("2")},
		{MustParse("2"), MustParse("3")},
		{MustParse("2"), MustParse("22")},
		{MustParse("112"), MustParse("113")},
		{MustParse("23"), MustParse("3")},
		{MustParse("12"), MustParse("122")},
		{MustParse("222"), MustParse("23")},
	}
}

// TestEncodeBetweenMatchesReference pins the one-pass batch encoder to
// the validated per-gap reference, digit for digit.
func TestEncodeBetweenMatchesReference(t *testing.T) {
	for _, bounds := range qedBoundsGrid() {
		l, r := bounds[0], bounds[1]
		for _, n := range []int{0, 1, 2, 3, 5, 8, 17, 64, 255, 256, 500} {
			got, err := EncodeBetween(l, r, n)
			if err != nil {
				t.Fatalf("EncodeBetween(%v, %v, %d): %v", l, r, n, err)
			}
			want, err := RefNBetween(l, r, n)
			if err != nil {
				t.Fatalf("RefNBetween(%v, %v, %d): %v", l, r, n, err)
			}
			if len(got) != len(want) {
				t.Fatalf("EncodeBetween(%v, %v, %d): %d codes, reference %d", l, r, n, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("EncodeBetween(%v, %v, %d)[%d] = %v, reference %v", l, r, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestEncodeBetweenCompactness bounds the longest emitted code: each
// bisection level adds at most one quaternary digit on top of the
// longer bound, so a batch of n codes never needs more than
// max(|l|, |r|) + ceil(log2(n+1)) + 1 digits. (Unlike CDBS, QED's
// initial Encode uses its own top-down split, so the open gap is
// covered by this bound rather than digit equality with Encode.)
func TestEncodeBetweenCompactness(t *testing.T) {
	for _, bounds := range qedBoundsGrid() {
		l, r := bounds[0], bounds[1]
		for _, n := range []int{1, 3, 16, 255, 729} {
			out, err := EncodeBetween(l, r, n)
			if err != nil {
				t.Fatal(err)
			}
			limit := max(l.Len(), r.Len()) + bits.Len(uint(n)) + 1
			for i, c := range out {
				if c.Len() > limit {
					t.Fatalf("EncodeBetween(%v, %v, %d)[%d] = %v has %d digits, limit %d",
						l, r, n, i, c, c.Len(), limit)
				}
			}
		}
	}
}

// TestEncodeBetweenOrderedInsideBounds re-states the acceptance
// property: n codes, strictly increasing, strictly inside (l, r),
// every one ending with quaternary digit 2 or 3.
func TestEncodeBetweenOrderedInsideBounds(t *testing.T) {
	for _, bounds := range qedBoundsGrid() {
		l, r := bounds[0], bounds[1]
		out, err := EncodeBetween(l, r, 33)
		if err != nil {
			t.Fatal(err)
		}
		prev := l
		for i, c := range out {
			if !c.EndsValid() {
				t.Fatalf("code %d %v does not end with 2 or 3", i, c)
			}
			if !prev.IsEmpty() && prev.Compare(c) >= 0 {
				t.Fatalf("code %d %v not above its predecessor %v", i, c, prev)
			}
			prev = c
		}
		if !r.IsEmpty() && prev.Compare(r) >= 0 {
			t.Fatalf("last code %v not below right bound %v", prev, r)
		}
	}
}

// TestEncodeBetweenValidation covers the rejection paths. (Bounds
// with an invalid ending cannot be built from outside the package —
// Parse rejects them — so only count and ordering are checkable here.)
func TestEncodeBetweenValidation(t *testing.T) {
	two := MustParse("2")
	if _, err := EncodeBetween(two, two, -1); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := EncodeBetween(MustParse("3"), two, 1); err == nil {
		t.Fatal("unordered bounds accepted")
	}
	if out, err := EncodeBetween(MustParse("3"), two, 0); err != nil || len(out) != 0 {
		t.Fatalf("EncodeBetween(unordered, 0) = %v, %v; want empty, nil", out, err)
	}
}

// FuzzEncodeBetween differentially fuzzes the one-pass batch encoder
// against the validated per-gap reference over arbitrary bounds and
// counts.
func FuzzEncodeBetween(f *testing.F) {
	f.Add("", "", 5)
	f.Add("2", "", 3)
	f.Add("", "2", 7)
	f.Add("12", "2", 16)
	f.Add("112", "113", 200)
	f.Add("3", "2", 4)  // not ordered
	f.Add("21", "2", 2) // invalid left ending
	f.Add("2", "3", -1) // negative count
	f.Add("4", "2", 1)  // invalid digit
	f.Fuzz(func(t *testing.T, ls, rs string, n int) {
		if n > 4096 {
			n %= 4096
		}
		l, lerr := Parse(ls)
		r, rerr := Parse(rs)
		if lerr != nil || rerr != nil {
			return
		}
		got, gerr := EncodeBetween(l, r, n)
		want, werr := RefNBetween(l, r, n)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("EncodeBetween(%v, %v, %d) err = %v, reference err = %v", l, r, n, gerr, werr)
		}
		if gerr != nil {
			return
		}
		if len(got) != len(want) {
			t.Fatalf("EncodeBetween(%v, %v, %d): %d codes, reference %d", l, r, n, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("EncodeBetween(%v, %v, %d)[%d] = %v, reference %v", l, r, n, i, got[i], want[i])
			}
		}
	})
}
