package qed

import "testing"

// FuzzBetween fuzzes the QED middle-code rules: for any valid codes
// l ≺ r (either possibly open), Between must produce l ≺ m ≺ r with m
// ending in 2 or 3 and containing no 0 digit — QED's "completely
// avoid re-labeling" property says it can never fail on valid ordered
// input.
func FuzzBetween(f *testing.F) {
	f.Add("", "")
	f.Add("2", "")
	f.Add("", "2")
	f.Add("2", "3")
	f.Add("2", "22")
	f.Add("12", "13")
	f.Add("2212", "2213")
	f.Add("132", "2")
	f.Add("102", "2") // contains the reserved 0 digit
	f.Add("21", "3")  // bad ending
	f.Fuzz(func(t *testing.T, ls, rs string) {
		l, lerr := Parse(ls)
		r, rerr := Parse(rs)
		if lerr != nil || rerr != nil {
			return // Parse already rejected the malformed code
		}
		m, err := Between(l, r)
		if !l.IsEmpty() && !r.IsEmpty() && l.Compare(r) >= 0 {
			if err == nil {
				t.Fatalf("Between(%q, %q) accepted unordered bounds, returned %q", l, r, m)
			}
			return
		}
		if err != nil {
			t.Fatalf("Between(%q, %q) failed on valid bounds: %v", l, r, err)
		}
		if !m.EndsValid() {
			t.Errorf("Between(%q, %q) = %q must end with 2 or 3", l, r, m)
		}
		for i := 0; i < m.Len(); i++ {
			if d := m.Digit(i); d < 1 || d > 3 {
				t.Errorf("Between(%q, %q) = %q contains digit %d", l, r, m, d)
			}
		}
		if !l.IsEmpty() && l.Compare(m) >= 0 {
			t.Errorf("Between(%q, %q) = %q: not left < mid", l, r, m)
		}
		if !r.IsEmpty() && m.Compare(r) >= 0 {
			t.Errorf("Between(%q, %q) = %q: not mid < right", l, r, m)
		}
	})
}
