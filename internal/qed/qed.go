// Package qed implements the QED quaternary encoding (Li and Ling,
// "QED: A Novel Quaternary Encoding to Completely Avoid Re-labeling in
// XML Updates", CIKM 2005), which Section 6 of the CDBS paper uses for
// skewed insertions.
//
// A QED code is a string over the quaternary digits {1, 2, 3}, each
// stored in 2 bits, that ends with 2 or 3. The digit 0 never appears
// inside a code: it is reserved as the separator between consecutive
// codes in storage, so QED needs no length field and therefore never
// hits the overflow problem — re-labeling is avoided completely.
//
// The CDBS paper cites but does not reprint QED's algorithms, so the
// middle-code rules here are re-derived (and proved in the package
// tests) to satisfy the stated properties:
//
//   - between any two codes a new code always exists (no relabeling),
//   - an insertion modifies only the last quaternary symbol (2 bits)
//     of a neighbor code, plus at most one appended symbol,
//   - codes stay lexicographically ordered and end with 2 or 3.
//
// The rules, for l ≺ r (either may be empty, meaning an open end):
//
//	size(l) <  size(r):  r = y⊕2 → m = y⊕12;  r = y⊕3 → m = y⊕2
//	size(l) >= size(r):  l = x⊕3 → m = l⊕2
//	                     l = x⊕2 → m = x⊕3, unless r == x⊕3 (the
//	                     adjacent pair), in which case m = l⊕2
package qed

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// mCodeLen tracks the digit length of every code Between assigns —
// the growth signal behind QED's storage curve. One atomic update,
// no allocation, so the insertion kernel stays at its alloc pin.
var mCodeLen = metrics.Default.Histogram("qed_code_len_digits", metrics.ExpBuckets(1, 2, 12))

// Code is an immutable QED code: a sequence of quaternary digits
// 1..3 ending with 2 or 3. The zero value is the empty code.
type Code struct {
	digits string // each byte is 1, 2 or 3
}

// Empty is the empty code, used as an open bound.
var Empty = Code{}

// ErrInvalidDigit reports a digit outside {1,2,3}.
var ErrInvalidDigit = errors.New("qed: digit outside {1,2,3}")

// ErrBadEnding reports a non-empty code that does not end with 2 or 3.
var ErrBadEnding = errors.New("qed: code must end with 2 or 3")

// ErrNotOrdered reports Between(l, r) with l ⊀ r.
var ErrNotOrdered = errors.New("qed: left code is not smaller than right code")

// Parse converts a textual code such as "132" into a Code.
func Parse(s string) (Code, error) {
	for i := 0; i < len(s); i++ {
		if s[i] < '1' || s[i] > '3' {
			return Empty, fmt.Errorf("%w: %q", ErrInvalidDigit, s[i])
		}
	}
	c := Code{digits: mapASCII(s)}
	if !c.IsEmpty() && !c.EndsValid() {
		return Empty, fmt.Errorf("%w: %q", ErrBadEnding, s)
	}
	return c, nil
}

// mapASCII converts '1'..'3' bytes to digit values 1..3.
func mapASCII(s string) string {
	b := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		b[i] = s[i] - '0'
	}
	return string(b)
}

// MustParse is Parse for known-good literals; it panics on error.
func MustParse(s string) Code {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of quaternary digits.
func (c Code) Len() int { return len(c.digits) }

// IsEmpty reports whether the code has no digits.
func (c Code) IsEmpty() bool { return len(c.digits) == 0 }

// Digit returns digit i (0-based), a value in 1..3.
func (c Code) Digit(i int) byte { return c.digits[i] }

// Bits returns the code's storage size in bits: 2 per digit.
func (c Code) Bits() int { return 2 * len(c.digits) }

// BitsWithSeparator returns the storage size including the trailing
// "0" separator that delimits the code in a stream (2 more bits).
func (c Code) BitsWithSeparator() int { return c.Bits() + 2 }

// EndsValid reports whether the code ends with 2 or 3.
func (c Code) EndsValid() bool {
	if len(c.digits) == 0 {
		return false
	}
	last := c.digits[len(c.digits)-1]
	return last == 2 || last == 3
}

// Raw digit-value suffixes for single-allocation code construction:
// appending or splicing with a constant compiles to one string
// concatenation, where append(dropLast(), d...) would allocate per
// digit.
const (
	rawD2  = "\x02"
	rawD3  = "\x03"
	rawD12 = "\x01\x02"
)

// append returns c with one digit appended.
func (c Code) append(d byte) Code { return Code{digits: c.digits + string(d)} }

// dropLast returns c without its final digit.
func (c Code) dropLast() Code { return Code{digits: c.digits[:len(c.digits)-1]} }

// spliceLast returns c with its final digit replaced by the raw digit
// suffix, in one allocation.
func (c Code) spliceLast(suffix string) Code {
	return Code{digits: c.digits[:len(c.digits)-1] + suffix}
}

// Compare orders codes lexicographically: digits compare numerically
// and a proper prefix sorts before its extensions. Go string
// comparison on the digit values implements exactly that order.
func (c Code) Compare(d Code) int {
	switch {
	case c.digits < d.digits:
		return -1
	case c.digits > d.digits:
		return 1
	}
	return 0
}

// Less reports c ≺ d.
func (c Code) Less(d Code) bool { return c.Compare(d) < 0 }

// Equal reports digit-for-digit equality.
func (c Code) Equal(d Code) bool { return c.digits == d.digits }

// HasPrefix reports whether p is a prefix of c.
func (c Code) HasPrefix(p Code) bool { return strings.HasPrefix(c.digits, p.digits) }

// String renders the digits as text, e.g. "132".
func (c Code) String() string {
	b := make([]byte, len(c.digits))
	for i := 0; i < len(c.digits); i++ {
		b[i] = c.digits[i] + '0'
	}
	return string(b)
}

// Between returns a code m with l ≺ m ≺ r. Either bound may be Empty,
// meaning open. Between never fails on valid ordered input — QED's
// "completely avoid re-labeling" property.
func Between(l, r Code) (Code, error) {
	m, err := between(l, r)
	if err == nil {
		mCodeLen.Observe(float64(m.Len()))
	}
	return m, err
}

// between implements the middle-code rules with full validation.
func between(l, r Code) (Code, error) {
	if !l.IsEmpty() && !l.EndsValid() {
		return Empty, fmt.Errorf("%w: left %q", ErrBadEnding, l)
	}
	if !r.IsEmpty() && !r.EndsValid() {
		return Empty, fmt.Errorf("%w: right %q", ErrBadEnding, r)
	}
	if !l.IsEmpty() && !r.IsEmpty() && l.Compare(r) >= 0 {
		return Empty, fmt.Errorf("%w: %q vs %q", ErrNotOrdered, l, r)
	}
	return middle(l, r), nil
}

// middle applies the middle-code rules to already-validated bounds.
// It never fails on valid ordered input — QED's "completely avoid
// re-labeling" property — which is what lets EncodeBetween run the
// subdivision without per-gap error paths.
func middle(l, r Code) Code {
	if l.IsEmpty() && r.IsEmpty() {
		return Code{digits: rawD2}
	}
	if l.Len() < r.Len() {
		// Work on the right neighbor's last symbol.
		if r.digits[r.Len()-1] == 2 {
			return r.spliceLast(rawD12) // 2 → 12
		}
		return r.spliceLast(rawD2) // 3 → 2
	}
	// Work on the left neighbor's last symbol.
	if n := l.Len(); l.digits[n-1] == 2 {
		// x⊕3 fits between x⊕2 and r except for the adjacent pair
		// r == x⊕3, where the code must grow instead. (With
		// l.Len() >= r.Len(), any other r > l differs from l before
		// the last digit and so stays above x⊕3.)
		adjacent := r.Len() == n && r.digits[n-1] == 3 && r.digits[:n-1] == l.digits[:n-1]
		if !adjacent {
			return l.spliceLast(rawD3) // 2 → 3
		}
		return Code{digits: l.digits + rawD2}
	}
	return Code{digits: l.digits + rawD2} // 3 → 32
}

// NBetween returns n codes m1 ≺ … ≺ mn strictly between l and r,
// assigned by even subdivision so a bulk insertion gets short codes.
func NBetween(l, r Code, n int) ([]Code, error) {
	return EncodeBetween(l, r, n)
}

// EncodeBetween is the bulk counterpart of cdbs.EncodeBetween for the
// QED encoding: it emits n ordered codes strictly between l and r in
// one pass, validating the bounds once and applying the middle-code
// rules positionally. The output matches the gap-by-gap subdivision
// (RefNBetween) code for code; with both bounds empty the run is the
// even subdivision of the whole code universe, the same shape
// Encode(n) produces.
func EncodeBetween(l, r Code, n int) ([]Code, error) {
	if n < 0 {
		return nil, fmt.Errorf("qed: EncodeBetween count %d is negative", n)
	}
	if n == 0 {
		// Zero codes need no gap: bounds are not validated, matching the
		// historical NBetween contract the reference keeps.
		return nil, nil
	}
	if !l.IsEmpty() && !l.EndsValid() {
		return nil, fmt.Errorf("%w: left %q", ErrBadEnding, l)
	}
	if !r.IsEmpty() && !r.EndsValid() {
		return nil, fmt.Errorf("%w: right %q", ErrBadEnding, r)
	}
	if !l.IsEmpty() && !r.IsEmpty() && l.Compare(r) >= 0 {
		return nil, fmt.Errorf("%w: %q vs %q", ErrNotOrdered, l, r)
	}
	out := make([]Code, n)
	fillGap(out, l, r)
	for _, m := range out {
		mCodeLen.Observe(float64(m.Len()))
	}
	return out, nil
}

// fillGap assigns the codes of the open gap (l, r) into out: the
// middle slot gets the gap's middle code and the halves recurse with
// it as their shared bound. The slice midpoint len(out)/2 equals the
// (lo+hi+1)/2 pivot of the index-based subdivision at every depth, so
// the output matches RefNBetween exactly.
func fillGap(out []Code, l, r Code) {
	if len(out) == 0 {
		return
	}
	mid := len(out) / 2
	m := middle(l, r)
	out[mid] = m
	fillGap(out[:mid], l, m)
	fillGap(out[mid+1:], m, r)
}

// TwoBetween returns m1 ≺ m2 strictly between l and r, for containment
// (start, end) pairs.
func TwoBetween(l, r Code) (m1, m2 Code, err error) {
	m1, err = Between(l, r)
	if err != nil {
		return Empty, Empty, err
	}
	m2, err = Between(m1, r)
	if err != nil {
		return Empty, Empty, err
	}
	return m1, m2, nil
}

// Encode returns compact QED codes for the numbers 1..n in order. The
// assignment branches three ways per digit (the universe of codes of
// length ≤ k has 3^k − 1 members), so code lengths grow with log₃(n) —
// larger than CDBS's log₂(n) bits by the 2-bits-per-digit factor,
// which is the size premium Section 6 describes.
func Encode(n int) ([]Code, error) {
	if n < 0 {
		return nil, fmt.Errorf("qed: cannot encode %d numbers", n)
	}
	out := make([]Code, 0, n)
	var gen func(prefix Code, n int)
	gen = func(prefix Code, n int) {
		if n <= 0 {
			return
		}
		if n == 1 {
			out = append(out, prefix.append(2))
			return
		}
		if n == 2 {
			out = append(out, prefix.append(2), prefix.append(3))
			return
		}
		rem := n - 2
		n1 := (rem + 2) / 3
		n2 := (rem + 1) / 3
		n3 := rem / 3
		gen(prefix.append(1), n1)
		out = append(out, prefix.append(2))
		gen(prefix.append(2), n2)
		out = append(out, prefix.append(3))
		gen(prefix.append(3), n3)
	}
	gen(Empty, n)
	return out, nil
}

// MustEncode is Encode for known-good n; it panics on error.
func MustEncode(n int) []Code {
	codes, err := Encode(n)
	if err != nil {
		panic(err)
	}
	return codes
}

// Marshal packs codes into a byte stream, two bits per digit, with a
// "0" separator after every code. No length fields are needed: "0"
// never occurs inside a code, which is why QED is immune to the
// overflow problem.
func Marshal(codes []Code) []byte {
	var buf []byte
	nbits := 0
	put := func(d byte) {
		if nbits%8 == 0 {
			buf = append(buf, 0)
		}
		buf[nbits/8] |= d << (6 - nbits%8)
		nbits += 2
	}
	for _, c := range codes {
		for i := 0; i < c.Len(); i++ {
			put(c.Digit(i))
		}
		put(0)
	}
	return buf
}

// Unmarshal parses a stream produced by Marshal. Trailing zero padding
// after the final separator is ignored.
func Unmarshal(data []byte) ([]Code, error) {
	var codes []Code
	cur := Empty
	sawDigit := false
	for i := 0; i < len(data)*4; i++ {
		d := (data[i/4] >> (6 - 2*(i%4))) & 3
		if d == 0 {
			if sawDigit {
				if !cur.EndsValid() {
					return nil, fmt.Errorf("%w: %q in stream", ErrBadEnding, cur)
				}
				codes = append(codes, cur)
				cur = Empty
				sawDigit = false
			}
			continue
		}
		cur = cur.append(d)
		sawDigit = true
	}
	if sawDigit {
		return nil, errors.New("qed: stream ends inside a code (missing separator)")
	}
	return codes, nil
}
