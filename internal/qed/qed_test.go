package qed

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	for _, s := range []string{"2", "3", "12", "132", "3332"} {
		c, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if c.String() != s {
			t.Errorf("Parse(%q).String() = %q", s, c)
		}
	}
	if c, err := Parse(""); err != nil || !c.IsEmpty() {
		t.Errorf("Parse(\"\") = %v, %v", c, err)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	for _, s := range []string{"0", "4", "a", "120", "21", "231"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"12", "2", -1}, // 1 < 2 at first digit
		{"2", "22", -1}, // prefix ≺ extension
		{"22", "23", -1},
		{"23", "3", -1},
		{"3", "32", -1},
		{"2", "2", 0},
		{"32", "23", 1},
	}
	for _, c := range cases {
		if got := MustParse(c.a).Compare(MustParse(c.b)); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBetweenRules(t *testing.T) {
	cases := []struct{ l, r, want string }{
		{"", "", "2"},
		{"", "2", "12"},   // right ends 2 → 12
		{"", "12", "112"}, // recursion to the left stays open
		{"2", "", "3"},    // left ends 2 → 3
		{"3", "", "32"},   // left ends 3 → append 2
		{"2", "3", "22"},  // adjacent pair guard: x⊕2 vs x⊕3 grows
		{"12", "13", "122"},
		{"2", "22", "212"}, // size(l) < size(r), right ends 2
		{"2", "23", "22"},  // right ends 3 → 2
		{"12", "2", "13"},  // equal size, not adjacent
		{"13", "2", "132"}, // left ends 3
	}
	for _, c := range cases {
		m, err := Between(MustParse(c.l), MustParse(c.r))
		if err != nil {
			t.Fatalf("Between(%q,%q): %v", c.l, c.r, err)
		}
		if m.String() != c.want {
			t.Errorf("Between(%q,%q) = %q, want %q", c.l, c.r, m, c.want)
		}
	}
}

func TestBetweenValidation(t *testing.T) {
	if _, err := Between(MustParse("3"), MustParse("2")); err == nil {
		t.Error("unordered input accepted")
	}
	if _, err := Between(MustParse("2"), MustParse("2")); err == nil {
		t.Error("equal input accepted")
	}
}

// The core QED property: insertion always succeeds, preserves order,
// and yields a valid code — for arbitrary valid ordered pairs.
func TestBetweenPropertyQuick(t *testing.T) {
	gen := rand.New(rand.NewSource(5))
	randCode := func() Code {
		n := gen.Intn(8)
		c := Empty
		for i := 0; i < n; i++ {
			c = c.append(byte(1 + gen.Intn(3)))
		}
		return c.append(byte(2 + gen.Intn(2)))
	}
	f := func(int) bool {
		a, b := randCode(), randCode()
		switch a.Compare(b) {
		case 0:
			return true
		case 1:
			a, b = b, a
		}
		m, err := Between(a, b)
		if err != nil {
			return false
		}
		return a.Less(m) && m.Less(b) && m.EndsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// QED must never run out of room: drive a long run of insertions at
// every position of a growing list and at a fixed position.
func TestNoRelabelingEver(t *testing.T) {
	codes := MustEncode(4)
	gen := rand.New(rand.NewSource(8))
	for i := 0; i < 3000; i++ {
		p := gen.Intn(len(codes) + 1)
		l, r := Empty, Empty
		if p > 0 {
			l = codes[p-1]
		}
		if p < len(codes) {
			r = codes[p]
		}
		m, err := Between(l, r)
		if err != nil {
			t.Fatalf("insert %d at %d: %v", i, p, err)
		}
		codes = append(codes, Empty)
		copy(codes[p+1:], codes[p:])
		codes[p] = m
	}
	for i := 1; i < len(codes); i++ {
		if !codes[i-1].Less(codes[i]) {
			t.Fatalf("order violated at %d: %q !≺ %q", i, codes[i-1], codes[i])
		}
	}
	// Fixed-place (skewed) insertion: still no failure, by design.
	l, r := MustParse("2"), MustParse("3")
	for i := 0; i < 500; i++ {
		m, err := Between(l, r)
		if err != nil {
			t.Fatalf("skewed insert %d: %v", i, err)
		}
		if !(l.Less(m) && m.Less(r)) {
			t.Fatalf("skewed insert %d out of order", i)
		}
		r = m
	}
}

func TestTwoBetween(t *testing.T) {
	l, r := MustParse("2"), MustParse("22")
	m1, m2, err := TwoBetween(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if !(l.Less(m1) && m1.Less(m2) && m2.Less(r)) {
		t.Errorf("TwoBetween order: %q %q %q %q", l, m1, m2, r)
	}
}

func TestEncodeOrderedValidCompact(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 8, 9, 26, 27, 100, 1000} {
		codes := MustEncode(n)
		if len(codes) != n {
			t.Fatalf("Encode(%d) returned %d codes", n, len(codes))
		}
		maxLen := 0
		for i, c := range codes {
			if !c.EndsValid() {
				t.Fatalf("Encode(%d)[%d] = %q invalid ending", n, i, c)
			}
			if i > 0 && !codes[i-1].Less(c) {
				t.Fatalf("Encode(%d) out of order at %d", n, i)
			}
			if c.Len() > maxLen {
				maxLen = c.Len()
			}
		}
		// Compactness: lengths stay within ceil(log3(n+1)) + 1 digits.
		if n > 0 {
			bound := 1
			for p := 3; p-1 < n; p *= 3 {
				bound++
			}
			if maxLen > bound+1 {
				t.Errorf("Encode(%d): max len %d exceeds bound %d", n, maxLen, bound+1)
			}
		}
	}
}

func TestEncodeNegative(t *testing.T) {
	if _, err := Encode(-1); err == nil {
		t.Error("Encode(-1) succeeded")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 18, 100} {
		codes := MustEncode(n)
		data := Marshal(codes)
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal(n=%d): %v", n, err)
		}
		if len(back) != len(codes) {
			t.Fatalf("n=%d: round trip %d codes, want %d", n, len(back), len(codes))
		}
		for i := range codes {
			if !codes[i].Equal(back[i]) {
				t.Errorf("n=%d code %d: %q != %q", n, i, back[i], codes[i])
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	// A stream ending mid-code (digit with no separator in any byte):
	// digits 1,1,1,1 fill one byte exactly with no separator.
	if _, err := Unmarshal([]byte{0b01010101}); err == nil {
		t.Error("truncated stream accepted")
	}
	// A code ending in 1 followed by a separator is invalid.
	// digits: 1, sep, rest zero = 01 00 00 00.
	if _, err := Unmarshal([]byte{0b01000000}); err == nil {
		t.Error("code ending in 1 accepted")
	}
}

func TestBitsAccounting(t *testing.T) {
	c := MustParse("132")
	if c.Bits() != 6 || c.BitsWithSeparator() != 8 {
		t.Errorf("Bits = %d, with separator %d", c.Bits(), c.BitsWithSeparator())
	}
}

// QED is larger than CDBS but within a constant factor (~1.26× digits
// plus separators); sanity-check the premium for a realistic n.
func TestSizePremiumOverBinary(t *testing.T) {
	n := 4096
	codes := MustEncode(n)
	total := 0
	for _, c := range codes {
		total += c.BitsWithSeparator()
	}
	binary := 0
	for i := 1; i <= n; i++ {
		b := 0
		for v := i; v > 0; v >>= 1 {
			b++
		}
		binary += b
	}
	if total <= binary {
		t.Errorf("QED total %d not larger than binary %d", total, binary)
	}
	if float64(total) > 2.5*float64(binary) {
		t.Errorf("QED total %d more than 2.5x binary %d", total, binary)
	}
}

func BenchmarkBetween(b *testing.B) {
	l, r := MustParse("2212"), MustParse("2213")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Between(l, r); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBetweenAllocs pins Between at one allocation per produced code
// on all four rule branches, including the adjacent pair that grows.
func TestBetweenAllocs(t *testing.T) {
	cases := []struct{ name, l, r string }{
		{"right-ends-2", "12", "1212"},
		{"right-ends-3", "12", "123"},
		{"left-ends-2", "112", "12"},
		{"adjacent", "112", "113"},
		{"left-ends-3", "13", "2"},
	}
	for _, c := range cases {
		l, r := MustParse(c.l), MustParse(c.r)
		got := testing.AllocsPerRun(200, func() {
			if _, err := Between(l, r); err != nil {
				t.Fatal(err)
			}
		})
		if got > 1 {
			t.Errorf("Between %s: %.1f allocs per run, want <= 1", c.name, got)
		}
	}
}
