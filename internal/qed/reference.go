package qed

import "fmt"

// RefNBetween is the retained gap-by-gap bulk assignment: an even
// index subdivision driven by one validated Between call per emitted
// code. EncodeBetween replaced it on the production paths with a
// one-pass recursion that validates the bounds once; it stays as the
// differential ground truth for the unit tests, FuzzEncodeBetween and
// the word/ref benchmark pair, mirroring cdbs/reference.go.
func RefNBetween(l, r Code, n int) ([]Code, error) {
	if n < 0 {
		return nil, fmt.Errorf("qed: NBetween count %d is negative", n)
	}
	out := make([]Code, n+2)
	out[0], out[n+1] = l, r
	var sub func(lo, hi int) error
	sub = func(lo, hi int) error {
		if lo+1 >= hi {
			return nil
		}
		mid := (lo + hi + 1) / 2
		m, err := Between(out[lo], out[hi])
		if err != nil {
			return err
		}
		out[mid] = m
		if err := sub(lo, mid); err != nil {
			return err
		}
		return sub(mid, hi)
	}
	if err := sub(0, n+1); err != nil {
		return nil, err
	}
	return out[1 : n+1], nil
}
