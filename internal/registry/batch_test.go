package registry

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// TestLookupUnknownScheme pins the typed failure mode of Lookup: the
// sentinel matches via errors.Is, near-miss names get a did-you-mean
// suggestion and hopeless names get the known-name list instead.
func TestLookupUnknownScheme(t *testing.T) {
	_, err := Lookup("V-CDBS-Containmen") // one deletion away
	if err == nil {
		t.Fatal("near-miss name accepted")
	}
	if !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("errors.Is(err, ErrUnknownScheme) = false for %v", err)
	}
	var use *UnknownSchemeError
	if !errors.As(err, &use) {
		t.Fatalf("error %T is not *UnknownSchemeError", err)
	}
	if use.Suggestion != "V-CDBS-Containment" {
		t.Fatalf("Suggestion = %q, want V-CDBS-Containment", use.Suggestion)
	}
	if !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("near-miss message lacks a suggestion: %q", err)
	}

	_, err = Lookup("bogus")
	if !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("errors.Is(err, ErrUnknownScheme) = false for %v", err)
	}
	if !errors.As(err, &use) {
		t.Fatalf("error %T is not *UnknownSchemeError", err)
	}
	if use.Suggestion != "" {
		t.Fatalf("Suggestion = %q for a hopeless name, want none", use.Suggestion)
	}
	if !strings.Contains(err.Error(), "known:") {
		t.Fatalf("hopeless-name message lacks the known list: %q", err)
	}
}

// insertShapes inserts the shapes as consecutive children of parent
// starting at pos, one InsertSubtree call per shape, returning the
// flattened preorder ids and the total re-label count — the sequential
// path every scheme supports.
func insertShapes(t *testing.T, lab scheme.Labeling, parent, pos int, shapes []*xmltree.Node) ([]int, int) {
	t.Helper()
	var ids []int
	relabeled := 0
	for k, shape := range shapes {
		fids, rl, err := lab.InsertSubtree(parent, pos+k, shape)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, fids...)
		relabeled += rl
	}
	return ids, relabeled
}

// TestBatchInsertConformance checks that for every scheme a batch
// insert of n siblings/subtrees is equivalent to n sequential inserts:
// the same ids in the same order, the same predicate answers, and no
// re-labeling for the dynamic schemes.
func TestBatchInsertConformance(t *testing.T) {
	for _, entry := range All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			doc := randomDoc(40, 7)
			seq, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			bat, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}

			// A run mixing leaf siblings with larger subtrees.
			gen := rand.New(rand.NewSource(23))
			shapes := []*xmltree.Node{
				xmltree.NewElement("s"),
				randomShape(gen, 4),
				xmltree.NewElement("s"),
				randomShape(gen, 7),
				xmltree.NewElement("s"),
			}
			parent := 0
			pos := len(seq.Tree().Children[parent]) / 2

			seqIDs, _ := insertShapes(t, seq, parent, pos, shapes)

			var batIDs []int
			var batRelabeled int
			if bi, ok := bat.(scheme.BatchInserter); ok {
				idss, rl, err := bi.InsertSubtrees(parent, pos, shapes)
				if err != nil {
					t.Fatal(err)
				}
				if len(idss) != len(shapes) {
					t.Fatalf("got %d id slices for %d shapes", len(idss), len(shapes))
				}
				for k, fids := range idss {
					if len(fids) != shapes[k].SubtreeSize() {
						t.Fatalf("fragment %d: %d ids for %d nodes", k, len(fids), shapes[k].SubtreeSize())
					}
					batIDs = append(batIDs, fids...)
				}
				batRelabeled = rl
			} else {
				// Schemes without a bulk path (Prime) fall back to the
				// sequential loop, which is then trivially equivalent.
				batIDs, batRelabeled = insertShapes(t, bat, parent, pos, shapes)
			}

			if len(seqIDs) != len(batIDs) {
				t.Fatalf("sequential created %d ids, batch %d", len(seqIDs), len(batIDs))
			}
			for i := range seqIDs {
				if seqIDs[i] != batIDs[i] {
					t.Fatalf("id %d: sequential %d, batch %d", i, seqIDs[i], batIDs[i])
				}
			}
			if entry.Dynamic && entry.Name != "Prime" && batRelabeled != 0 {
				t.Fatalf("dynamic scheme relabeled %d on batch insert", batRelabeled)
			}

			// Both documents must answer every predicate identically —
			// each is checked against the structural oracle, and a pair
			// sample is compared across the two labelings directly.
			checkAgainstOracle(t, seq)
			checkAgainstOracle(t, bat)
			n := bat.Tree().Len()
			for trial := 0; trial < 2000; trial++ {
				u, v := gen.Intn(n), gen.Intn(n)
				if seq.IsAncestor(u, v) != bat.IsAncestor(u, v) {
					t.Fatalf("IsAncestor(%d,%d) differs between sequential and batch", u, v)
				}
				if seq.Before(u, v) != bat.Before(u, v) {
					t.Fatalf("Before(%d,%d) differs between sequential and batch", u, v)
				}
			}
		})
	}
}

// TestCloneIndependence checks that every scheme supports
// scheme.Cloner and that edits on the original never leak into a
// clone: the snapshot layer's correctness rests on exactly this.
func TestCloneIndependence(t *testing.T) {
	for _, entry := range All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			doc := randomDoc(30, 11)
			lab, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			cl, ok := lab.(scheme.Cloner)
			if !ok {
				t.Fatalf("%s does not implement scheme.Cloner", entry.Name)
			}
			clone := cl.CloneLabeling()
			wantLen := clone.Len()

			// Edit the original: a child insert and a subtree insert.
			if _, _, err := lab.InsertChildAt(0, 0); err != nil {
				t.Fatal(err)
			}
			gen := rand.New(rand.NewSource(3))
			if _, _, err := lab.InsertSubtree(0, 1, randomShape(gen, 5)); err != nil {
				t.Fatal(err)
			}

			if clone.Len() != wantLen {
				t.Fatalf("clone length changed from %d to %d after edits to the original", wantLen, clone.Len())
			}
			checkAgainstOracle(t, clone)

			// And the other direction: editing the clone must not move
			// the original.
			origLen := lab.Len()
			if _, _, err := clone.InsertChildAt(0, 0); err != nil {
				t.Fatal(err)
			}
			if lab.Len() != origLen {
				t.Fatalf("original length changed after editing the clone")
			}
			checkAgainstOracle(t, lab)

			// Deletions in the original must not resurrect or kill
			// anything in the clone either. The oracle helper assumes a
			// dense id space, so the deletion comes last and only the
			// clone (which never saw it) is re-checked.
			cloneLen := clone.Len()
			if kids := lab.Tree().Children[0]; len(kids) > 2 {
				if _, err := lab.DeleteSubtree(kids[len(kids)-1]); err != nil {
					t.Fatal(err)
				}
			}
			if clone.Len() != cloneLen {
				t.Fatalf("clone length changed from %d to %d after a delete in the original", cloneLen, clone.Len())
			}
			checkAgainstOracle(t, clone)
		})
	}
}
