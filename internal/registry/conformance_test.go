package registry

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// randomDoc builds a random document of about n nodes with the given
// seed.
func randomDoc(n int, seed int64) *xmltree.Document {
	gen := rand.New(rand.NewSource(seed))
	root := xmltree.NewElement("root")
	nodes := []*xmltree.Node{root}
	for len(nodes) < n {
		p := nodes[gen.Intn(len(nodes))]
		var child *xmltree.Node
		if gen.Intn(5) == 0 {
			child = xmltree.NewText("t")
		} else {
			child = xmltree.NewElement("e")
		}
		p.AppendChild(child)
		if child.Kind == xmltree.Element {
			nodes = append(nodes, child)
		}
	}
	return &xmltree.Document{Root: root}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("V-CDBS-Containment"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if len(Names()) != len(All()) {
		t.Fatal("Names/All mismatch")
	}
}

// TestConformance verifies, for every scheme, that the label-derived
// predicates agree with the structural truth on a random document.
func TestConformance(t *testing.T) {
	doc := randomDoc(120, 7)
	for _, entry := range All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			lab, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstOracle(t, lab)
		})
	}
}

// checkAgainstOracle compares every predicate with the Tree oracle.
func checkAgainstOracle(t *testing.T, lab scheme.Labeling) {
	t.Helper()
	tr := lab.Tree()
	n := tr.Len()
	order := tr.PreOrder()
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	gen := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4000; trial++ {
		u, v := gen.Intn(n), gen.Intn(n)
		if u == v {
			continue
		}
		if got, want := lab.IsAncestor(u, v), tr.IsAncestorStructural(u, v); got != want {
			t.Fatalf("IsAncestor(%d,%d) = %v, want %v", u, v, got, want)
		}
		if got, want := lab.IsParent(u, v), tr.Parents[v] == u; got != want {
			t.Fatalf("IsParent(%d,%d) = %v, want %v", u, v, got, want)
		}
		if got, want := lab.IsSibling(u, v), tr.Parents[u] != -1 && tr.Parents[u] == tr.Parents[v]; got != want {
			t.Fatalf("IsSibling(%d,%d) = %v, want %v", u, v, got, want)
		}
		if got, want := lab.Before(u, v), pos[u] < pos[v]; got != want {
			t.Fatalf("Before(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
	for v := 0; v < n; v++ {
		if got, want := lab.Level(v), tr.Depths[v]; got != want {
			t.Fatalf("Level(%d) = %d, want %d", v, got, want)
		}
	}
	if lab.Len() != n {
		t.Fatalf("Len = %d, want %d", lab.Len(), n)
	}
	if lab.TotalLabelBits() <= 0 {
		t.Fatalf("TotalLabelBits = %d", lab.TotalLabelBits())
	}
}

// TestConformanceAfterInsertions re-checks predicates after a batch of
// random insertions on every scheme.
func TestConformanceAfterInsertions(t *testing.T) {
	for _, entry := range All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			doc := randomDoc(60, 11)
			lab, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			gen := rand.New(rand.NewSource(3))
			for i := 0; i < 60; i++ {
				tr := lab.Tree()
				parent := gen.Intn(tr.Len())
				pos := gen.Intn(len(tr.Children[parent]) + 1)
				if _, _, err := lab.InsertChildAt(parent, pos); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			checkAgainstOracle(t, lab)
		})
	}
}

// TestDynamicSchemesNeverRelabel asserts the Table 4 zeros: dynamic
// schemes report no re-labeled nodes on single insertions anywhere.
// (Prime reports SC recalculations instead, which are expected.)
func TestDynamicSchemesNeverRelabel(t *testing.T) {
	for _, entry := range All() {
		if !entry.Dynamic || entry.Name == "Prime" {
			continue
		}
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			doc := randomDoc(80, 23)
			lab, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			gen := rand.New(rand.NewSource(5))
			for i := 0; i < 150; i++ {
				tr := lab.Tree()
				parent := gen.Intn(tr.Len())
				pos := gen.Intn(len(tr.Children[parent]) + 1)
				_, relabeled, err := lab.InsertChildAt(parent, pos)
				if err != nil {
					t.Fatal(err)
				}
				if relabeled != 0 {
					t.Fatalf("insert %d relabeled %d nodes", i, relabeled)
				}
			}
		})
	}
}

// TestStaticSchemesRelabel asserts that the static schemes do
// re-label when squeezed.
func TestStaticSchemesRelabel(t *testing.T) {
	for _, name := range []string{"V-Binary-Containment", "F-Binary-Containment", "DeweyID(UTF8)-Prefix", "Binary-String-Prefix"} {
		entry, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			doc, err := xmltree.ParseString("<r><a/><b/><c/></r>")
			if err != nil {
				t.Fatal(err)
			}
			lab, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			// Insert before the second child: something after it must
			// be re-labeled.
			_, relabeled, err := lab.InsertChildAt(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if relabeled == 0 {
				t.Error("static scheme reported 0 re-labels for a squeezed insert")
			}
		})
	}
}

// TestInsertErrors checks the error paths shared by the labelings.
func TestInsertErrors(t *testing.T) {
	doc, err := xmltree.ParseString("<r><a/></r>")
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range All() {
		lab, err := entry.Build(doc)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if _, _, err := lab.InsertChildAt(-1, 0); err == nil {
			t.Errorf("%s: bad parent accepted", entry.Name)
		}
		if _, _, err := lab.InsertChildAt(0, 99); err == nil {
			t.Errorf("%s: bad position accepted", entry.Name)
		}
		if _, _, err := lab.InsertSiblingBefore(0); err == nil {
			t.Errorf("%s: sibling-before-root accepted", entry.Name)
		}
		if !errors.Is(err, nil) {
			_ = err
		}
	}
}

// TestNamesMatchPaperConventions ensures containment schemes are
// suffixed and prefix schemes named per the figures.
func TestNamesMatchPaperConventions(t *testing.T) {
	doc := randomDoc(20, 1)
	for _, entry := range All() {
		lab, err := entry.Build(doc)
		if err != nil {
			t.Fatal(err)
		}
		if lab.Name() != entry.Name {
			t.Errorf("labeling name %q != registry name %q", lab.Name(), entry.Name)
		}
		if entry.Name != "Prime" && !strings.Contains(entry.Name, "-Prefix") && !strings.Contains(entry.Name, "-Containment") {
			t.Errorf("unconventional name %q", entry.Name)
		}
	}
}
