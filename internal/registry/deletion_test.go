package registry

import (
	"math/rand"
	"testing"
)

// TestDeletionNeverRelabels exercises Section 5.2.1 on every scheme:
// deleting subtrees leaves the remaining predicates exactly consistent
// with the structural truth, with no label changes.
func TestDeletionNeverRelabels(t *testing.T) {
	for _, entry := range All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			doc := randomDoc(100, 31)
			lab, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			tr := lab.Tree()
			gen := rand.New(rand.NewSource(17))
			removedTotal := 0
			for i := 0; i < 12; i++ {
				// Pick a live non-root node.
				var victim int
				for {
					victim = gen.Intn(tr.Cap())
					if tr.Alive(victim) && tr.Parents[victim] != -1 {
						break
					}
				}
				want := tr.SubtreeSize(victim)
				removed, err := lab.DeleteSubtree(victim)
				if err != nil {
					t.Fatal(err)
				}
				if removed != want {
					t.Fatalf("DeleteSubtree removed %d, want %d", removed, want)
				}
				removedTotal += removed
				if tr.Alive(victim) {
					t.Fatal("victim still alive")
				}
			}
			if lab.Len() != tr.Cap()-removedTotal {
				t.Fatalf("Len = %d after removing %d of %d", lab.Len(), removedTotal, tr.Cap())
			}
			// Remaining nodes must still agree with the oracle.
			live := make([]int, 0, lab.Len())
			for v := 0; v < tr.Cap(); v++ {
				if tr.Alive(v) {
					live = append(live, v)
				}
			}
			order := tr.PreOrder()
			pos := map[int]int{}
			for i, v := range order {
				pos[v] = i
			}
			for trial := 0; trial < 1500; trial++ {
				u := live[gen.Intn(len(live))]
				v := live[gen.Intn(len(live))]
				if u == v {
					continue
				}
				if got, want := lab.IsAncestor(u, v), tr.IsAncestorStructural(u, v); got != want {
					t.Fatalf("IsAncestor(%d,%d) = %v, want %v", u, v, got, want)
				}
				if got, want := lab.Before(u, v), pos[u] < pos[v]; got != want {
					t.Fatalf("Before(%d,%d) = %v, want %v", u, v, got, want)
				}
			}
			// Storage accounting shrinks with deletion.
			if lab.TotalLabelBits() <= 0 {
				t.Fatal("no label storage left")
			}
			// Deleting the root empties the document.
			root := order[0]
			before := lab.Len()
			removed, err := lab.DeleteSubtree(root)
			if err != nil {
				t.Fatal(err)
			}
			if removed != before || lab.Len() != 0 {
				t.Fatalf("root deletion removed %d of %d, %d left", removed, before, lab.Len())
			}
			// Deleting a dead node fails.
			if _, err := lab.DeleteSubtree(root); err == nil {
				t.Fatal("double deletion accepted")
			}
		})
	}
}

// TestInsertAfterDelete mixes deletions and insertions.
func TestInsertAfterDelete(t *testing.T) {
	for _, entry := range All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			doc := randomDoc(40, 41)
			lab, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			tr := lab.Tree()
			// Delete the root's first child's subtree, then insert a
			// fresh node in its place.
			first := tr.Children[0][0]
			if _, err := lab.DeleteSubtree(first); err != nil {
				t.Fatal(err)
			}
			id, _, err := lab.InsertChildAt(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !lab.IsParent(0, id) {
				t.Error("fresh node not a child of root")
			}
			if len(tr.Children[0]) == 0 || tr.Children[0][0] != id {
				t.Error("fresh node not first child")
			}
		})
	}
}
