package registry

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/labelstore"
	"repro/internal/scheme"
)

// TestEverySchemeMarshalsLabels checks that all labelings implement
// scheme.LabelMarshaler, produce non-empty payloads, and produce
// distinct payloads for distinct nodes.
func TestEverySchemeMarshalsLabels(t *testing.T) {
	doc := randomDoc(50, 3)
	for _, entry := range All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			lab, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			m, ok := lab.(scheme.LabelMarshaler)
			if !ok {
				t.Fatalf("%s does not implement LabelMarshaler", entry.Name)
			}
			seen := map[string]int{}
			for v := 0; v < lab.Len(); v++ {
				payload, err := m.MarshalLabel(v)
				if err != nil {
					t.Fatalf("MarshalLabel(%d): %v", v, err)
				}
				key := string(payload)
				if prev, dup := seen[key]; dup {
					t.Fatalf("nodes %d and %d share a serialised label %x", prev, v, payload)
				}
				seen[key] = v
			}
			if _, err := m.MarshalLabel(-1); err == nil {
				t.Error("MarshalLabel(-1) succeeded")
			}
		})
	}
}

// TestSaveLabelingRoundTrip checkpoints a labeling to disk and checks
// the stored records line up with fresh marshals.
func TestSaveLabelingRoundTrip(t *testing.T) {
	doc := randomDoc(40, 5)
	for _, name := range []string{"V-CDBS-Containment", "QED-Prefix", "Prime"} {
		entry, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		lab, err := entry.Build(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "labels.log")
		store, err := labelstore.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		written, err := labelstore.SaveLabeling(store, lab)
		if err != nil {
			t.Fatal(err)
		}
		if written != lab.Len() {
			t.Fatalf("%s: wrote %d of %d labels", name, written, lab.Len())
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
		records, err := labelstore.ReadAll(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(records) != lab.Len() {
			t.Fatalf("%s: %d records", name, len(records))
		}
		m := lab.(scheme.LabelMarshaler)
		for _, r := range records {
			want, err := m.MarshalLabel(int(r.ID))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(r.Payload, want) {
				t.Fatalf("%s: node %d payload mismatch", name, r.ID)
			}
		}
	}
}

// TestMarshaledSizeTracksAccounting sanity-checks that serialised
// label bytes are in the same ballpark as TotalLabelBits/8 — the
// accounting and the storage form must not drift apart wildly.
func TestMarshaledSizeTracksAccounting(t *testing.T) {
	doc := randomDoc(200, 7)
	for _, name := range []string{"V-CDBS-Containment", "QED-Containment", "QED-Prefix", "OrdPath1-Prefix"} {
		entry, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		lab, err := entry.Build(doc)
		if err != nil {
			t.Fatal(err)
		}
		m := lab.(scheme.LabelMarshaler)
		var serialised int64
		for v := 0; v < lab.Len(); v++ {
			p, err := m.MarshalLabel(v)
			if err != nil {
				t.Fatal(err)
			}
			serialised += int64(len(p)) * 8
		}
		accounted := lab.TotalLabelBits()
		// Serialisation adds byte padding and length prefixes; allow
		// up to 4x but require the same order of magnitude.
		if serialised < accounted/4 || serialised > accounted*4 {
			t.Errorf("%s: serialised %d bits vs accounted %d bits", name, serialised, accounted)
		}
	}
}
