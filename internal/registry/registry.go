// Package registry enumerates every labeling scheme in the CDBS
// paper's evaluation under its figure name, so harnesses and tools can
// iterate over them uniformly.
package registry

import (
	"fmt"
	"sort"

	"repro/internal/containment"
	"repro/internal/keys"
	"repro/internal/ordpath"
	"repro/internal/prefix"
	"repro/internal/primelbl"
	"repro/internal/scheme"
)

// Entry is one scheme.
type Entry struct {
	Name string
	// Dynamic reports whether single insertions never re-label
	// (Table 4's zero rows).
	Dynamic bool
	Build   scheme.Builder
}

// All returns every scheme in the order the paper's tables list them.
func All() []Entry {
	return []Entry{
		{Name: "Prime", Dynamic: true, Build: primelbl.BuildLabeling},
		{Name: "DeweyID(UTF8)-Prefix", Dynamic: false, Build: prefix.Build(prefix.Dewey())},
		{Name: "Binary-String-Prefix", Dynamic: false, Build: prefix.Build(prefix.Cohen())},
		{Name: "OrdPath1-Prefix", Dynamic: true, Build: prefix.Build(prefix.OrdPath(ordpath.Table1))},
		{Name: "OrdPath2-Prefix", Dynamic: true, Build: prefix.Build(prefix.OrdPath(ordpath.Table2))},
		{Name: "QED-Prefix", Dynamic: true, Build: prefix.Build(prefix.QEDCodec())},
		{Name: "V-CDBS-Prefix", Dynamic: true, Build: prefix.Build(prefix.VCDBSCodec())},
		{Name: "Float-point-Containment", Dynamic: true, Build: containment.Build(keys.Float())},
		{Name: "V-Binary-Containment", Dynamic: false, Build: containment.Build(keys.VBinary())},
		{Name: "F-Binary-Containment", Dynamic: false, Build: containment.Build(keys.FBinary())},
		{Name: "V-CDBS-Containment", Dynamic: true, Build: containment.Build(keys.VCDBS())},
		{Name: "F-CDBS-Containment", Dynamic: true, Build: containment.Build(keys.FCDBS())},
		{Name: "QED-Containment", Dynamic: true, Build: containment.Build(keys.QED())},
	}
}

// Names returns every scheme name, sorted.
func Names() []string {
	entries := All()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// Lookup finds a scheme by its figure name.
func Lookup(name string) (Entry, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("registry: unknown scheme %q (known: %v)", name, Names())
}
