// Package registry enumerates every labeling scheme in the CDBS
// paper's evaluation under its figure name, so harnesses and tools can
// iterate over them uniformly.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/containment"
	"repro/internal/keys"
	"repro/internal/ordpath"
	"repro/internal/prefix"
	"repro/internal/primelbl"
	"repro/internal/scheme"
)

// Entry is one scheme.
type Entry struct {
	Name string
	// Dynamic reports whether single insertions never re-label
	// (Table 4's zero rows).
	Dynamic bool
	Build   scheme.Builder
}

// All returns every scheme in the order the paper's tables list them.
func All() []Entry {
	return []Entry{
		{Name: "Prime", Dynamic: true, Build: primelbl.BuildLabeling},
		{Name: "DeweyID(UTF8)-Prefix", Dynamic: false, Build: prefix.Build(prefix.Dewey())},
		{Name: "Binary-String-Prefix", Dynamic: false, Build: prefix.Build(prefix.Cohen())},
		{Name: "OrdPath1-Prefix", Dynamic: true, Build: prefix.Build(prefix.OrdPath(ordpath.Table1))},
		{Name: "OrdPath2-Prefix", Dynamic: true, Build: prefix.Build(prefix.OrdPath(ordpath.Table2))},
		{Name: "QED-Prefix", Dynamic: true, Build: prefix.Build(prefix.QEDCodec())},
		{Name: "V-CDBS-Prefix", Dynamic: true, Build: prefix.Build(prefix.VCDBSCodec())},
		{Name: "Float-point-Containment", Dynamic: true, Build: containment.Build(keys.Float())},
		{Name: "V-Binary-Containment", Dynamic: false, Build: containment.Build(keys.VBinary())},
		{Name: "F-Binary-Containment", Dynamic: false, Build: containment.Build(keys.FBinary())},
		{Name: "V-CDBS-Containment", Dynamic: true, Build: containment.Build(keys.VCDBS())},
		{Name: "F-CDBS-Containment", Dynamic: true, Build: containment.Build(keys.FCDBS())},
		{Name: "QED-Containment", Dynamic: true, Build: containment.Build(keys.QED())},
	}
}

// Names returns every scheme name, sorted.
func Names() []string {
	entries := All()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// ErrUnknownScheme is the sentinel every failed Lookup matches with
// errors.Is, whatever the requested name was.
var ErrUnknownScheme = errors.New("registry: unknown scheme")

// UnknownSchemeError reports a failed Lookup: the requested name plus
// the registered name closest to it by edit distance, when one is
// close enough to plausibly be a typo. It unwraps to
// ErrUnknownScheme.
type UnknownSchemeError struct {
	Name       string // the requested scheme name
	Suggestion string // nearest registered name; "" when none is close
}

// Error renders a did-you-mean hint when a near match exists, and the
// full known-name list otherwise.
func (e *UnknownSchemeError) Error() string {
	if e.Suggestion != "" {
		return fmt.Sprintf("registry: unknown scheme %q (did you mean %q?)", e.Name, e.Suggestion)
	}
	return fmt.Sprintf("registry: unknown scheme %q (known: %v)", e.Name, Names())
}

// Unwrap makes errors.Is(err, ErrUnknownScheme) hold.
func (e *UnknownSchemeError) Unwrap() error { return ErrUnknownScheme }

// Lookup finds a scheme by its figure name. A failed lookup returns
// an *UnknownSchemeError carrying a nearest-match suggestion; match
// it with errors.Is(err, ErrUnknownScheme).
func Lookup(name string) (Entry, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, &UnknownSchemeError{Name: name, Suggestion: nearest(name)}
}

// nearest returns the registered name with the smallest
// case-insensitive edit distance to name, when that distance is small
// enough to plausibly be a typo (at most 3 edits or half the
// requested name, whichever is larger).
func nearest(name string) string {
	limit := 3
	if h := len(name) / 2; h > limit {
		limit = h
	}
	best, bestDist := "", limit+1
	for _, e := range All() {
		if d := editDistance(strings.ToLower(name), strings.ToLower(e.Name)); d < bestDist {
			best, bestDist = e.Name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, two-row
// dynamic programming over bytes.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
