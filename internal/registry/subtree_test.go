package registry

import (
	"math/rand"
	"testing"

	"repro/internal/containment"
	"repro/internal/keys"
	"repro/internal/xmltree"
)

// randomShape builds a random element fragment of about n nodes.
func randomShape(gen *rand.Rand, n int) *xmltree.Node {
	root := xmltree.NewElement("frag")
	nodes := []*xmltree.Node{root}
	for len(nodes) < n {
		p := nodes[gen.Intn(len(nodes))]
		c := xmltree.NewElement("item")
		p.AppendChild(c)
		nodes = append(nodes, c)
	}
	return root
}

func TestInsertSubtreeConformance(t *testing.T) {
	for _, entry := range All() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			doc := randomDoc(60, 13)
			lab, err := entry.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			gen := rand.New(rand.NewSource(19))
			fragments := 6
			if entry.Name == "Prime" {
				fragments = 2 // node-by-node SC recomputation is slow by design
			}
			for f := 0; f < fragments; f++ {
				tr := lab.Tree()
				var parent int
				for {
					parent = gen.Intn(tr.Cap())
					if tr.Alive(parent) {
						break
					}
				}
				pos := gen.Intn(len(tr.Children[parent]) + 1)
				shape := randomShape(gen, 2+gen.Intn(12))
				ids, relabeled, err := lab.InsertSubtree(parent, pos, shape)
				if err != nil {
					t.Fatal(err)
				}
				if len(ids) != shape.SubtreeSize() {
					t.Fatalf("got %d ids for a %d-node fragment", len(ids), shape.SubtreeSize())
				}
				if entry.Dynamic && entry.Name != "Prime" && relabeled != 0 {
					t.Fatalf("dynamic scheme relabeled %d on bulk insert", relabeled)
				}
				// The fragment root must be the pos-th child of parent
				// and its ids internally consistent.
				if !lab.IsParent(parent, ids[0]) {
					t.Fatal("fragment root not a child of parent")
				}
				for _, id := range ids[1:] {
					if !lab.IsAncestor(ids[0], id) {
						t.Fatalf("fragment node %d not under fragment root", id)
					}
				}
			}
			checkAgainstOracle(t, lab)
		})
	}
}

func TestInsertSubtreeErrors(t *testing.T) {
	doc := randomDoc(10, 2)
	for _, entry := range All() {
		lab, err := entry.Build(doc)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := lab.InsertSubtree(0, 0, nil); err == nil {
			t.Errorf("%s: nil shape accepted", entry.Name)
		}
		if _, _, err := lab.InsertSubtree(-1, 0, xmltree.NewElement("x")); err == nil {
			t.Errorf("%s: bad parent accepted", entry.Name)
		}
	}
}

// TestBulkKeysStayCompact checks the point of NBetween: inserting a
// 200-node fragment in one batch produces far smaller labels than 200
// sequential insertions at the same spot.
func TestBulkKeysStayCompact(t *testing.T) {
	gen := rand.New(rand.NewSource(4))
	shape := randomShape(gen, 200)

	build := func() *containment.Labeling {
		doc, err := xmltree.ParseString("<r><a/><b/></r>")
		if err != nil {
			t.Fatal(err)
		}
		lab, err := containment.New(keys.VCDBS(), doc)
		if err != nil {
			t.Fatal(err)
		}
		return lab
	}

	bulk := build()
	if _, _, err := bulk.InsertSubtree(0, 1, shape); err != nil {
		t.Fatal(err)
	}

	sequential := build()
	for i := 0; i < 200; i++ {
		if _, _, err := sequential.InsertChildAt(0, 1); err != nil {
			t.Fatal(err)
		}
	}

	bb, sb := bulk.TotalLabelBits(), sequential.TotalLabelBits()
	if bb*2 > sb {
		t.Errorf("bulk insert %d bits not clearly below sequential %d bits", bb, sb)
	}
}
