// Package scheme defines the common contract every labeling scheme in
// the evaluation implements, plus the structural bookkeeping they
// share. Nodes are identified by dense integer ids (document order at
// build time; insertions allocate fresh ids). Relationship predicates
// must be answered from the labels — that is the whole point of a
// labeling scheme — while the Tree mirror exists for update plumbing
// (finding the neighbors of an insertion point) and for oracle checks
// in tests.
package scheme

import (
	"errors"
	"fmt"

	"repro/internal/xmltree"
)

// Labeling is a labeled document.
type Labeling interface {
	// Name returns the scheme's display name as used in the paper's
	// figures, e.g. "V-CDBS-Containment".
	Name() string
	// Len returns the number of currently labeled nodes (ids may be
	// sparse after deletions; Len counts live nodes).
	Len() int
	// Level returns the depth of node v (the root has level 1).
	Level(v int) int
	// IsAncestor reports whether u is a proper ancestor of v, decided
	// from the labels.
	IsAncestor(u, v int) bool
	// IsParent reports whether u is the parent of v, decided from the
	// labels.
	IsParent(u, v int) bool
	// IsSibling reports whether u and v are distinct siblings.
	IsSibling(u, v int) bool
	// Before reports document order, decided from the labels.
	Before(u, v int) bool
	// TotalLabelBits returns the storage footprint of all labels
	// under the paper's accounting (Figure 5).
	TotalLabelBits() int64
	// InsertChildAt inserts a fresh element node as the pos-th child
	// of parent. It returns the new node's id and how many existing
	// nodes had to be re-labeled (0 for fully dynamic schemes; for
	// Prime, the number of SC values recomputed).
	InsertChildAt(parent, pos int) (newID int, relabeled int, err error)
	// InsertSiblingBefore inserts a fresh element node as the
	// immediately preceding sibling of v.
	InsertSiblingBefore(v int) (newID int, relabeled int, err error)
	// InsertSubtree inserts a whole fragment with the shape of the
	// given element tree as the pos-th child of parent, labeling every
	// fragment node in one batch (Algorithm 2's even subdivision keeps
	// bulk labels short). It returns the new ids in preorder and the
	// re-label count for existing nodes.
	InsertSubtree(parent, pos int, shape *xmltree.Node) (ids []int, relabeled int, err error)
	// DeleteSubtree removes node v and its descendants. Deletion
	// never affects the relative order of the remaining labels
	// (Section 5.2.1 of the paper), so nothing is re-labeled; the
	// count of removed nodes is returned. Deleted ids must not be
	// passed to any predicate afterwards.
	DeleteSubtree(v int) (removed int, err error)
	// Tree exposes the structural mirror (for tests and harnesses).
	Tree() *Tree
}

// Builder constructs a labeling over a document.
type Builder func(doc *xmltree.Document) (Labeling, error)

// LabelMarshaler is implemented by labelings that can serialise one
// node's label for storage. Every labeling in this repository
// implements it; it is a separate interface so storage layers can
// discover the capability without widening Labeling.
type LabelMarshaler interface {
	// MarshalLabel returns node v's label in its storage form.
	MarshalLabel(v int) ([]byte, error)
}

// Cloner is implemented by labelings that can produce an independent
// deep copy of themselves. Snapshot layers (dyndoc.Concurrent) clone
// the labeling to build the next copy-on-write snapshot; like
// LabelMarshaler it is a separate interface so the capability can be
// discovered without widening Labeling. A clone must share no mutable
// state with its original: an edit on either side must never be
// observable on the other.
type Cloner interface {
	// CloneLabeling returns an independent deep copy of the labeling.
	CloneLabeling() Labeling
}

// OrderedLabeler is implemented by labelings that can emit an
// order-preserving byte encoding of one node's label: bytes.Compare
// on two encodings agrees with Before, and every live node's encoding
// is unique. Paged index storage (internal/store) keys its B-trees
// with these bytes; a labeling without the capability (or whose
// underlying codec lacks it) is restricted to the in-memory slice
// backend.
type OrderedLabeler interface {
	// AppendOrderedLabel appends node v's order-preserving label bytes
	// to dst.
	AppendOrderedLabel(dst []byte, v int) ([]byte, error)
}

// BatchInserter is implemented by labelings with a bulk sibling-run
// insertion path: the whole run takes the label-assignment write path
// once, so dynamic codecs place every code of the run into the single
// gap at (parent, pos) with one even subdivision (EncodeBetween) —
// short codes, one validation — instead of splitting the gap once per
// fragment.
type BatchInserter interface {
	// InsertSubtrees inserts fragments with the shapes of the given
	// element trees as consecutive children of parent starting at
	// position pos. It returns one preorder id slice per fragment and
	// the total re-label count for existing nodes.
	InsertSubtrees(parent, pos int, shapes []*xmltree.Node) (ids [][]int, relabeled int, err error)
}

// ErrBadNode reports a node id that is out of range or dead.
var ErrBadNode = errors.New("scheme: bad node id")

// ErrNoOrderedLabels reports a labeling whose label bytes do not sort
// like document order, so it cannot feed an order-preserving key
// store. Implementations of OrderedLabeler whose underlying codec
// lacks the property wrap this sentinel.
var ErrNoOrderedLabels = errors.New("scheme: labels have no order-preserving byte form")

// Tree is the structural mirror every labeling keeps: parent pointers
// and ordered child lists by node id. It is bookkeeping for updates,
// not part of any label.
type Tree struct {
	Parents  []int   // parent id; -1 for the root
	Children [][]int // ordered child ids
	Depths   []int   // depth; root = 1
	Dead     []bool  // ids removed by deletion
	live     int
}

// NewTree mirrors a document, with node ids in document order.
func NewTree(doc *xmltree.Document) *Tree {
	nodes := doc.Nodes()
	index := make(map[*xmltree.Node]int, len(nodes))
	for i, n := range nodes {
		index[n] = i
	}
	t := &Tree{
		Parents:  make([]int, len(nodes)),
		Children: make([][]int, len(nodes)),
		Depths:   make([]int, len(nodes)),
		Dead:     make([]bool, len(nodes)),
		live:     len(nodes),
	}
	for i, n := range nodes {
		if n.Parent == nil {
			t.Parents[i] = -1
			t.Depths[i] = 1
		} else {
			p := index[n.Parent]
			t.Parents[i] = p
			t.Depths[i] = t.Depths[p] + 1
			t.Children[p] = append(t.Children[p], i)
		}
	}
	return t
}

// Clone returns a deep copy of the structural mirror that shares no
// state with the original, for labelings that implement Cloner.
func (t *Tree) Clone() *Tree {
	out := &Tree{
		Parents:  append([]int(nil), t.Parents...),
		Children: make([][]int, len(t.Children)),
		Depths:   append([]int(nil), t.Depths...),
		Dead:     append([]bool(nil), t.Dead...),
		live:     t.live,
	}
	for i, kids := range t.Children {
		if kids != nil {
			out.Children[i] = append([]int(nil), kids...)
		}
	}
	return out
}

// Len returns the number of live nodes.
func (t *Tree) Len() int { return t.live }

// Cap returns the number of node ids ever allocated (live and dead).
func (t *Tree) Cap() int { return len(t.Parents) }

// Alive reports whether id v names a live node.
func (t *Tree) Alive(v int) bool { return v >= 0 && v < len(t.Parents) && !t.Dead[v] }

// ValidateInsert checks that parent is a live id and pos a valid
// child position.
func (t *Tree) ValidateInsert(parent, pos int) error {
	if !t.Alive(parent) {
		return fmt.Errorf("%w: parent %d", ErrBadNode, parent)
	}
	if pos < 0 || pos > len(t.Children[parent]) {
		return fmt.Errorf("scheme: child position %d out of range [0,%d]", pos, len(t.Children[parent]))
	}
	return nil
}

// AddChild records a fresh node as the pos-th child of parent and
// returns its id.
func (t *Tree) AddChild(parent, pos int) int {
	id := len(t.Parents)
	t.Parents = append(t.Parents, parent)
	t.Depths = append(t.Depths, t.Depths[parent]+1)
	t.Children = append(t.Children, nil)
	t.Dead = append(t.Dead, false)
	t.live++
	kids := t.Children[parent]
	kids = append(kids, 0)
	copy(kids[pos+1:], kids[pos:])
	kids[pos] = id
	t.Children[parent] = kids
	return id
}

// RemoveSubtree detaches node v and its descendants, marking their
// ids dead. It returns the number of removed nodes.
func (t *Tree) RemoveSubtree(v int) (int, error) {
	if !t.Alive(v) {
		return 0, fmt.Errorf("%w: %d", ErrBadNode, v)
	}
	if p := t.Parents[v]; p != -1 {
		kids := t.Children[p]
		for i, c := range kids {
			if c == v {
				t.Children[p] = append(kids[:i], kids[i+1:]...)
				break
			}
		}
	}
	removed := 0
	var kill func(int)
	kill = func(u int) {
		t.Dead[u] = true
		t.live--
		removed++
		for _, c := range t.Children[u] {
			kill(c)
		}
		t.Children[u] = nil
	}
	kill(v)
	return removed, nil
}

// SiblingPosition returns v's parent and its position among that
// parent's children.
func (t *Tree) SiblingPosition(v int) (parent, pos int, err error) {
	if !t.Alive(v) {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadNode, v)
	}
	parent = t.Parents[v]
	if parent == -1 {
		return 0, 0, fmt.Errorf("scheme: node %d is the root and has no siblings", v)
	}
	for i, c := range t.Children[parent] {
		if c == v {
			return parent, i, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: %d not found under parent %d", ErrBadNode, v, parent)
}

// SubtreeLast returns the id of the last node, in document order, of
// the subtree rooted at v (v itself for a leaf).
func (t *Tree) SubtreeLast(v int) int {
	for len(t.Children[v]) > 0 {
		v = t.Children[v][len(t.Children[v])-1]
	}
	return v
}

// SubtreeSize returns the node count of the subtree rooted at v.
func (t *Tree) SubtreeSize(v int) int {
	size := 1
	for _, c := range t.Children[v] {
		size += t.SubtreeSize(c)
	}
	return size
}

// IsAncestorStructural is the oracle answer used by tests to verify
// label-derived predicates.
func (t *Tree) IsAncestorStructural(u, v int) bool {
	for p := t.Parents[v]; p != -1; p = t.Parents[p] {
		if p == u {
			return true
		}
	}
	return false
}

// PreOrder returns node ids in current document order.
func (t *Tree) PreOrder() []int {
	root := -1
	for i, p := range t.Parents {
		if p == -1 && !t.Dead[i] {
			root = i
			break
		}
	}
	if root == -1 {
		return nil
	}
	out := make([]int, 0, len(t.Parents))
	var walk func(int)
	walk = func(v int) {
		out = append(out, v)
		for _, c := range t.Children[v] {
			walk(c)
		}
	}
	walk(root)
	return out
}
