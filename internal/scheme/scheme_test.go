package scheme

import (
	"testing"

	"repro/internal/xmltree"
)

func buildTree(t *testing.T) *Tree {
	t.Helper()
	doc, err := xmltree.ParseString("<r><a><b/><c/></a><d/></r>")
	if err != nil {
		t.Fatal(err)
	}
	return NewTree(doc)
}

// ids: r=0 a=1 b=2 c=3 d=4

func TestNewTreeShape(t *testing.T) {
	tr := buildTree(t)
	if tr.Len() != 5 || tr.Cap() != 5 {
		t.Fatalf("Len=%d Cap=%d", tr.Len(), tr.Cap())
	}
	wantParents := []int{-1, 0, 1, 1, 0}
	for i, w := range wantParents {
		if tr.Parents[i] != w {
			t.Errorf("Parents[%d] = %d, want %d", i, tr.Parents[i], w)
		}
	}
	wantDepths := []int{1, 2, 3, 3, 2}
	for i, w := range wantDepths {
		if tr.Depths[i] != w {
			t.Errorf("Depths[%d] = %d, want %d", i, tr.Depths[i], w)
		}
	}
	if len(tr.Children[0]) != 2 || tr.Children[0][0] != 1 || tr.Children[0][1] != 4 {
		t.Errorf("root children = %v", tr.Children[0])
	}
}

func TestPreOrderAndSubtree(t *testing.T) {
	tr := buildTree(t)
	order := tr.PreOrder()
	want := []int{0, 1, 2, 3, 4}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("PreOrder = %v", order)
		}
	}
	if got := tr.SubtreeSize(1); got != 3 {
		t.Errorf("SubtreeSize(1) = %d", got)
	}
	if got := tr.SubtreeLast(1); got != 3 {
		t.Errorf("SubtreeLast(1) = %d", got)
	}
	if got := tr.SubtreeLast(2); got != 2 {
		t.Errorf("SubtreeLast(leaf) = %d", got)
	}
}

func TestAddChildAndSiblingPosition(t *testing.T) {
	tr := buildTree(t)
	id := tr.AddChild(1, 1) // between b and c
	if id != 5 || tr.Len() != 6 {
		t.Fatalf("AddChild id=%d Len=%d", id, tr.Len())
	}
	if tr.Children[1][1] != id || tr.Depths[id] != 3 {
		t.Errorf("child misplaced: %v depth %d", tr.Children[1], tr.Depths[id])
	}
	p, pos, err := tr.SiblingPosition(id)
	if err != nil || p != 1 || pos != 1 {
		t.Errorf("SiblingPosition = %d,%d,%v", p, pos, err)
	}
	if _, _, err := tr.SiblingPosition(0); err == nil {
		t.Error("root sibling position accepted")
	}
	if _, _, err := tr.SiblingPosition(-1); err == nil {
		t.Error("bad id accepted")
	}
}

func TestValidateInsert(t *testing.T) {
	tr := buildTree(t)
	if err := tr.ValidateInsert(0, 2); err != nil {
		t.Error(err)
	}
	if err := tr.ValidateInsert(0, 3); err == nil {
		t.Error("position past end accepted")
	}
	if err := tr.ValidateInsert(9, 0); err == nil {
		t.Error("bad parent accepted")
	}
}

func TestRemoveSubtree(t *testing.T) {
	tr := buildTree(t)
	removed, err := tr.RemoveSubtree(1)
	if err != nil || removed != 3 {
		t.Fatalf("RemoveSubtree = %d, %v", removed, err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	for _, v := range []int{1, 2, 3} {
		if tr.Alive(v) {
			t.Errorf("node %d still alive", v)
		}
	}
	if len(tr.Children[0]) != 1 || tr.Children[0][0] != 4 {
		t.Errorf("root children = %v", tr.Children[0])
	}
	if _, err := tr.RemoveSubtree(1); err == nil {
		t.Error("double removal accepted")
	}
	order := tr.PreOrder()
	if len(order) != 2 || order[0] != 0 || order[1] != 4 {
		t.Errorf("PreOrder after removal = %v", order)
	}
}

func TestIsAncestorStructural(t *testing.T) {
	tr := buildTree(t)
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 2, true}, {1, 2, true}, {1, 3, true}, {0, 4, true},
		{1, 4, false}, {2, 3, false}, {4, 0, false},
	}
	for _, c := range cases {
		if got := tr.IsAncestorStructural(c.u, c.v); got != c.want {
			t.Errorf("IsAncestorStructural(%d,%d) = %v", c.u, c.v, got)
		}
	}
}

func TestAliveBounds(t *testing.T) {
	tr := buildTree(t)
	if tr.Alive(-1) || tr.Alive(99) {
		t.Error("out-of-range ids alive")
	}
	if !tr.Alive(0) {
		t.Error("root dead")
	}
}
