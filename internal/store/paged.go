package store

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/pagestore"
)

// ErrNoOrderedKeys reports a labeling scheme that cannot produce
// order-preserving label bytes; the paged backend requires them.
var ErrNoOrderedKeys = errors.New("store: labeling scheme does not expose order-preserving label bytes")

// paged keeps the element index in two B-trees over a checksummed page
// file:
//
//	labels tree:  ordered label bytes            -> node id  (document order)
//	names tree:   nameID(u32 BE) || label bytes  -> node id  (per-name, document order)
//
// Because the label encoding is order-preserving, an in-order scan of
// the labels tree yields ids in document order, and a prefix scan of
// the names tree under one nameID yields that name's ids in document
// order — no Before callback, no post-sort.
//
// The name table (name -> nameID) is in-memory only: the page file is
// rebuilt from the document on every open (the journal is the
// recovery truth), so nothing beyond the committed pages needs to
// survive a restart.
type paged struct {
	mu   sync.Mutex
	bind Binding
	dir  string
	// cachePages is the pager budget handed to every generation.
	cachePages int

	file   *pagestore.File // vet:guardedby mu
	pg     *pagestore.Pager
	labels *pagestore.Tree // vet:guardedby mu
	names  *pagestore.Tree // vet:guardedby mu
	gen    int             // vet:guardedby mu

	nameIDs  map[string]uint32 // vet:guardedby mu
	nameList []string          // vet:guardedby mu

	// memoElems and memoIDs materialize scan results once per mutation
	// epoch so repeated queries don't re-walk the tree. They are
	// mutated only under mu, but a materialized slice itself is never
	// written again — invalidation swaps in a nil slice or fresh map —
	// so handing one out as a borrowed read-only view (the same
	// contract the slice backend and the query engine use) is safe and
	// they are deliberately left un-annotated.
	memoElems []int
	memoIDs   map[string][]int

	// lastErr records a degraded read (IDs/Elems cannot return an
	// error through the query path); Flush surfaces it.
	lastErr error // vet:guardedby mu
}

func genPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("labels-%06d.pages", gen))
}

// OpenPaged creates a paged backend rooted at dir. The page file is
// created fresh — stale files from a previous process are removed —
// because the index is always rebuilt from the recovered document;
// pages are a spill target, not a source of truth. Binding.Key is
// required.
func OpenPaged(dir string, cachePages int, b Binding) (Backend, error) {
	if b.Key == nil {
		return nil, ErrNoOrderedKeys
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	stale, err := filepath.Glob(filepath.Join(dir, "labels-*.pages"))
	if err == nil {
		for _, s := range stale {
			_ = os.Remove(s)
		}
	}
	p := &paged{
		bind:       b,
		dir:        dir,
		cachePages: cachePages,
		gen:        1,
		nameIDs:    map[string]uint32{},
		memoIDs:    map[string][]int{},
	}
	p.mu.Lock()
	err = p.openGen()
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return p, nil
}

// openGen creates the current generation's file, pager and empty trees.
//
// vet:holds p.mu
func (p *paged) openGen() error {
	file, err := pagestore.Create(genPath(p.dir, p.gen))
	if err != nil {
		return err
	}
	p.file = file
	p.pg = pagestore.NewPager(file, p.cachePages)
	p.labels = pagestore.NewTree(p.pg)
	p.names = pagestore.NewTree(p.pg)
	return nil
}

func (p *paged) Name() string { return "paged" }

// vet:holds p.mu
func (p *paged) nameIDLocked(name string) uint32 {
	if id, ok := p.nameIDs[name]; ok {
		return id
	}
	id := uint32(len(p.nameList))
	p.nameIDs[name] = id
	p.nameList = append(p.nameList, name)
	return id
}

// labelKey appends the node's order-preserving label bytes.
func (p *paged) labelKey(dst []byte, id int) ([]byte, error) {
	return p.bind.Key(dst, id)
}

// nameKey builds the names-tree key: nameID (big-endian, so prefix
// scans isolate one name) followed by the label bytes.
func (p *paged) nameKey(dst []byte, nameID uint32, label []byte) []byte {
	dst = append(dst, byte(nameID>>24), byte(nameID>>16), byte(nameID>>8), byte(nameID))
	return append(dst, label...)
}

func (p *paged) invalidateLocked() {
	p.memoElems = nil
	if len(p.memoIDs) > 0 {
		p.memoIDs = map[string][]int{}
	}
}

// vet:holds p.mu
func (p *paged) addLocked(name string, id int) error {
	if id < 0 || int64(id) > math.MaxUint32 {
		return fmt.Errorf("store: node id %d out of paged range", id)
	}
	label, err := p.labelKey(nil, id)
	if err != nil {
		return err
	}
	if err := p.labels.Insert(label, uint32(id)); err != nil {
		return err
	}
	nk := p.nameKey(nil, p.nameIDLocked(name), label)
	if err := p.names.Insert(nk, uint32(id)); err != nil {
		return err
	}
	p.invalidateLocked()
	return nil
}

func (p *paged) Build(elems []int, nameOf func(int) string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.labels.Count() > 0 {
		// Rebuild into a fresh generation rather than deleting
		// entry-by-entry.
		if err := p.swapGenLocked(func(labels, names *pagestore.Tree) error { return nil }); err != nil {
			return err
		}
	}
	for _, id := range elems {
		if err := p.addLocked(nameOf(id), id); err != nil {
			return err
		}
	}
	p.invalidateLocked()
	return nil
}

func (p *paged) Add(name string, id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addLocked(name, id)
}

func (p *paged) Remove(doomed map[int]bool, nameOf func(int) string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var label []byte
	for id := range doomed {
		name := nameOf(id)
		if name == "" {
			continue // only elements are indexed
		}
		nameID, ok := p.nameIDs[name]
		if !ok {
			// Every Add inserts into both trees under the element's
			// name, so a name with no allocated id has no entries in
			// either tree; allocating one here would permanently grow
			// the name table (and every future clone's copy) for names
			// only ever seen in deletes.
			continue
		}
		var err error
		label, err = p.labelKey(label[:0], id)
		if err != nil {
			return err
		}
		if _, err := p.labels.Delete(label); err != nil {
			return err
		}
		nk := p.nameKey(nil, nameID, label)
		if _, err := p.names.Delete(nk); err != nil {
			return err
		}
	}
	p.invalidateLocked()
	return nil
}

func (p *paged) IDs(name string) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ids, ok := p.memoIDs[name]; ok {
		return ids
	}
	nameID, ok := p.nameIDs[name]
	if !ok {
		return nil
	}
	prefix := p.nameKey(nil, nameID, nil)
	ids := []int{}
	err := p.names.ScanPrefix(prefix, func(k []byte, v uint32) bool {
		ids = append(ids, int(v))
		return true
	})
	if err != nil {
		p.lastErr = err
		return nil
	}
	p.memoIDs[name] = ids
	return ids
}

func (p *paged) Elems() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.memoElems != nil {
		return p.memoElems
	}
	ids := []int{}
	err := p.labels.Scan(func(k []byte, v uint32) bool {
		ids = append(ids, int(v))
		return true
	})
	if err != nil {
		p.lastErr = err
		return nil
	}
	p.memoElems = ids
	return ids
}

func (p *paged) Entries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.labels.Count()
}

func (p *paged) MemoryFootprint() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var st pagestore.PagerStats
	if p.pg != nil {
		st = p.pg.Stats()
	}
	fp := int64(st.Resident) * pagestore.PageSize
	fp += int64(len(p.memoElems)) * 8
	for _, ids := range p.memoIDs {
		fp += int64(len(ids)) * 8
	}
	for name := range p.nameIDs {
		fp += int64(len(name)) + 24
	}
	return fp
}

func (p *paged) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var st pagestore.PagerStats
	if p.pg != nil {
		st = p.pg.Stats()
	}
	return Stats{
		Backend:        "paged",
		Entries:        p.labels.Count(),
		ResidentPages:  st.Resident,
		AllocatedPages: st.Allocated,
		CacheHits:      st.Hits,
		CacheMisses:    st.Misses,
		Writebacks:     st.Writebacks,
	}
}

// Clone shares the page file copy-on-write: both sides' trees are
// sealed, so each rewrites only pages it allocates afterwards. The
// clone inherits pager and file; a later Compact on either side swaps
// only that side's pointers, and the shared old file stays readable
// until every holder drops it.
func (p *paged) Clone(b Binding) (Backend, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cl := &paged{
		bind:       b,
		dir:        p.dir,
		cachePages: p.cachePages,
		file:       p.file,
		pg:         p.pg,
		labels:     p.labels.Clone(),
		names:      p.names.Clone(),
		gen:        p.gen,
		nameIDs:    make(map[string]uint32, len(p.nameIDs)),
		nameList:   append([]string(nil), p.nameList...),
		memoIDs:    map[string][]int{},
	}
	for name, id := range p.nameIDs {
		cl.nameIDs[name] = id
	}
	return cl, nil
}

// Flush writes every dirty page and commits both tree roots with a
// dual-fsync barrier, then reports any degraded read recorded since
// the previous flush.
func (p *paged) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pg == nil {
		return errors.New("store: paged backend is closed")
	}
	err := p.pg.Flush(
		[2]uint32{p.labels.Root(), p.names.Root()},
		[2]uint64{uint64(p.labels.Count()), uint64(p.names.Count())},
	)
	if err != nil {
		return err
	}
	p.labels.Sealed()
	p.names.Sealed()
	if p.lastErr != nil {
		err, p.lastErr = p.lastErr, nil
		return err
	}
	return nil
}

// swapGenLocked builds a fresh generation file, lets fill populate the
// new trees, commits it and retires the old generation. Old snapshots
// (clones) keep their own pager/file pointers; the old file is
// unlinked now and closed by a finalizer once no pager references it.
//
// vet:holds p.mu
func (p *paged) swapGenLocked(fill func(labels, names *pagestore.Tree) error) error {
	oldFile, oldPg, oldGen := p.file, p.pg, p.gen
	oldLabels, oldNames := p.labels, p.names
	p.gen++
	if err := p.openGen(); err != nil {
		p.file, p.pg, p.gen = oldFile, oldPg, oldGen
		return err
	}
	if err := fill(p.labels, p.names); err != nil {
		failedGen := p.gen
		_ = p.pg.Close()
		_ = os.Remove(genPath(p.dir, failedGen))
		p.file, p.pg, p.gen = oldFile, oldPg, oldGen
		p.labels, p.names = oldLabels, oldNames
		return fmt.Errorf("store: generation swap aborted: %w", err)
	}
	_ = os.Remove(oldFile.Path())
	// Close the retired pager only when the last clone holding it is
	// gone; until then its committed pages remain readable through the
	// unlinked inode.
	runtime.SetFinalizer(oldPg, func(pg *pagestore.Pager) { _ = pg.Close() })
	return nil
}

// Compact rebuilds both trees densely into a new generation file,
// reclaiming pages left sparse by unbalanced deletes.
func (p *paged) Compact() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pg == nil {
		return errors.New("store: paged backend is closed")
	}
	oldLabels, oldNames := p.labels, p.names
	err := p.swapGenLocked(func(labels, names *pagestore.Tree) error {
		if err := copyTree(oldLabels, labels); err != nil {
			return err
		}
		return copyTree(oldNames, names)
	})
	if err != nil {
		return err
	}
	p.invalidateLocked()
	return p.pg.Flush(
		[2]uint32{p.labels.Root(), p.names.Root()},
		[2]uint64{uint64(p.labels.Count()), uint64(p.names.Count())},
	)
}

func copyTree(src, dst *pagestore.Tree) error {
	var scanErr error
	err := src.Scan(func(k []byte, v uint32) bool {
		if scanErr = dst.Insert(k, v); scanErr != nil {
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return scanErr
}

func (p *paged) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pg == nil {
		return nil
	}
	err := p.pg.Close()
	p.pg = nil
	return err
}
