package store

import "sort"

// slice is the in-memory backend: per-name id slices plus the global
// element list, all kept in document order by ordered insertion. It is
// the original index layout and doubles as the differential oracle for
// the paged backend.
type slice struct {
	bind   Binding
	byName map[string][]int
	elems  []int
}

// NewSlice returns the in-memory slice backend. Binding.Before is
// required; Binding.Key is unused.
func NewSlice(b Binding) Backend {
	return &slice{bind: b, byName: map[string][]int{}}
}

func (s *slice) Name() string { return "slice" }

func (s *slice) Build(elems []int, nameOf func(int) string) error {
	s.elems = append(s.elems[:0], elems...)
	s.byName = make(map[string][]int, len(s.byName))
	for _, id := range elems {
		name := nameOf(id)
		s.byName[name] = append(s.byName[name], id)
	}
	return nil
}

// insertOrdered inserts id into ids keeping document order, using the
// binding's Before. Appends are O(1) for the common tail case.
func (s *slice) insertOrdered(ids []int, id int) []int {
	n := len(ids)
	if n == 0 || s.bind.Before(ids[n-1], id) {
		return append(ids, id)
	}
	at := sort.Search(n, func(i int) bool { return s.bind.Before(id, ids[i]) })
	ids = append(ids, 0)
	copy(ids[at+1:], ids[at:])
	ids[at] = id
	return ids
}

func (s *slice) Add(name string, id int) error {
	s.elems = s.insertOrdered(s.elems, id)
	s.byName[name] = s.insertOrdered(s.byName[name], id)
	return nil
}

func (s *slice) Remove(doomed map[int]bool, nameOf func(int) string) error {
	if len(doomed) == 0 {
		return nil
	}
	prune := func(ids []int) []int {
		kept := ids[:0]
		for _, id := range ids {
			if !doomed[id] {
				kept = append(kept, id)
			}
		}
		return kept
	}
	s.elems = prune(s.elems)
	names := map[string]bool{}
	for id := range doomed {
		if name := nameOf(id); name != "" {
			names[name] = true
		}
	}
	for name := range names {
		if pruned := prune(s.byName[name]); len(pruned) > 0 {
			s.byName[name] = pruned
		} else {
			delete(s.byName, name)
		}
	}
	return nil
}

func (s *slice) IDs(name string) []int { return s.byName[name] }
func (s *slice) Elems() []int          { return s.elems }
func (s *slice) Entries() int          { return len(s.elems) }

func (s *slice) MemoryFootprint() int64 {
	// Each indexed element costs one slot in elems and one in its name
	// list (8 bytes each), plus map/header overhead amortized into a
	// flat per-entry estimate.
	const bytesPerEntry = 64
	return int64(len(s.elems)) * bytesPerEntry
}

func (s *slice) Stats() Stats {
	return Stats{Backend: "slice", Entries: len(s.elems)}
}

func (s *slice) Clone(b Binding) (Backend, error) {
	cl := &slice{bind: b, byName: make(map[string][]int, len(s.byName))}
	cl.elems = append([]int(nil), s.elems...)
	// One backing array for all per-name lists keeps the clone compact.
	total := 0
	for _, ids := range s.byName {
		total += len(ids)
	}
	backing := make([]int, 0, total)
	for name, ids := range s.byName {
		start := len(backing)
		backing = append(backing, ids...)
		cl.byName[name] = backing[start:len(backing):len(backing)]
	}
	return cl, nil
}

func (s *slice) Flush() error   { return nil }
func (s *slice) Compact() error { return nil }
func (s *slice) Close() error   { return nil }
