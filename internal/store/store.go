// Package store defines the storage-backend API behind a document's
// element index: the mapping every query entry point uses from element
// name to node ids and from "all elements" to ids, both in document
// order.
//
// Two backends implement it. The slice backend keeps the index as
// in-memory ordered slices — the layout the repository used from the
// start, cheap and allocation-light, and retained as the differential
// oracle for the paged backend. The paged backend keeps the index in
// B-trees over fixed-size checksummed pages (internal/pagestore) keyed
// by raw order-preserving label bytes, so documents whose index
// exceeds the cache budget spill to disk instead of growing the heap.
//
// The backend is an index, not the source of truth: the journal (or
// the in-memory document) always holds the recoverable state, and a
// backend can be rebuilt from a pre-order walk at any time. That is
// why Backend methods that merely read may degrade (returning nil and
// recording the error for Flush) instead of failing queries outright.
package store

// Binding supplies the label-dependent callbacks a backend needs from
// the owning document. Backends never reach into the labeling
// directly; rebinding a Binding is how a cloned document re-points its
// backend clone at the cloned labeling.
type Binding struct {
	// Before reports whether node a precedes node b in document order.
	// Required by the slice backend's ordered inserts.
	Before func(a, b int) bool
	// Key appends an order-preserving byte encoding of node id's label
	// to dst: bytes.Compare on two encodings must agree with document
	// order, and encodings must be unique per live node. Nil when the
	// labeling scheme cannot provide one; the paged backend then
	// refuses to open.
	Key func(dst []byte, id int) ([]byte, error)
}

// Stats describes a backend for surfacing through Handle.Stats and
// the HTTP stats endpoint.
type Stats struct {
	// Backend is the backend name: "slice" or "paged".
	Backend string
	// Entries is the number of indexed elements.
	Entries int
	// ResidentPages and AllocatedPages describe the page cache and
	// file; zero for the slice backend.
	ResidentPages  int
	AllocatedPages int
	// CacheHits, CacheMisses and Writebacks are cumulative pager
	// counters; zero for the slice backend.
	CacheHits   uint64
	CacheMisses uint64
	Writebacks  uint64
}

// CacheHitRatio returns hits/(hits+misses), or 0 with no traffic.
func (s Stats) CacheHitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Backend is a document's element index. Implementations are not
// safe for concurrent use; the owning document serializes access the
// same way it does for its labeling.
type Backend interface {
	// Name identifies the backend ("slice", "paged").
	Name() string

	// Build replaces the index contents from a document-order walk:
	// elems lists every element node id in document order and nameOf
	// returns each node's element name.
	Build(elems []int, nameOf func(int) string) error

	// Add indexes one new element node. The node's label must already
	// be assigned (Binding callbacks are consulted).
	Add(name string, id int) error

	// Remove drops every doomed node from the index. nameOf reports
	// each node's element name ("" for non-elements, which are
	// skipped). Must be called while the doomed nodes' labels are
	// still live.
	Remove(doomed map[int]bool, nameOf func(int) string) error

	// IDs returns the ids of elements named name in document order.
	// Callers must not mutate or retain the slice across index
	// mutations.
	IDs(name string) []int

	// Elems returns all element ids in document order, under the same
	// borrowing rule as IDs.
	Elems() []int

	// Entries returns the number of indexed elements.
	Entries() int

	// MemoryFootprint estimates resident bytes attributable to the
	// index, the figure the catalog charges against its budget.
	MemoryFootprint() int64

	// Stats snapshots backend statistics.
	Stats() Stats

	// Clone returns an independent copy bound to b, for cloned
	// documents. Paged clones share the page file copy-on-write.
	Clone(b Binding) (Backend, error)

	// Flush persists buffered state (a no-op for slice) and reports
	// any error a degraded read recorded earlier.
	Flush() error

	// Compact rewrites persistent storage densely (a no-op for slice).
	Compact() error

	// Close releases resources. The index is unusable afterwards.
	Close() error
}
