package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// testWorld fabricates the document side of a Binding: every node id
// gets a unique order key standing in for its label, so Before and Key
// agree with each other the same way a real labeling's comparator and
// ordered byte encoding do.
type testWorld struct {
	ord  map[int]uint64
	name map[int]string
}

func newWorld() *testWorld {
	return &testWorld{ord: map[int]uint64{}, name: map[int]string{}}
}

func (w *testWorld) binding() Binding {
	return Binding{
		Before: func(a, b int) bool { return w.ord[a] < w.ord[b] },
		Key: func(dst []byte, id int) ([]byte, error) {
			o, ok := w.ord[id]
			if !ok {
				return nil, fmt.Errorf("key for dead node %d", id)
			}
			return binary.BigEndian.AppendUint64(dst, o), nil
		},
	}
}

func checkEqual(t *testing.T, w *testWorld, oracle, subject Backend, names []string) {
	t.Helper()
	if o, s := oracle.Entries(), subject.Entries(); o != s {
		t.Fatalf("entries: oracle %d, paged %d", o, s)
	}
	if o, s := oracle.Elems(), subject.Elems(); !sameIDs(o, s) {
		t.Fatalf("elems diverge:\noracle %v\npaged  %v", o, s)
	}
	for _, name := range names {
		if o, s := oracle.IDs(name), subject.IDs(name); !sameIDs(o, s) {
			t.Fatalf("ids(%q) diverge:\noracle %v\npaged  %v", name, o, s)
		}
	}
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSlicePagedDifferential drives random adds and removes through
// both backends and requires identical query results throughout: the
// slice backend is the oracle the paged backend must match.
func TestSlicePagedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := newWorld()
	oracle := NewSlice(w.binding())
	paged, err := OpenPaged(t.TempDir(), 8, w.binding())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()

	names := []string{"book", "author", "title", "chapter", "section"}
	nameOf := func(id int) string { return w.name[id] }
	live := []int{}
	nextID := 0

	for round := 0; round < 40; round++ {
		// A burst of inserts at random document positions...
		for i := 0; i < 50; i++ {
			id := nextID
			nextID++
			w.ord[id] = rng.Uint64()
			nm := names[rng.Intn(len(names))]
			w.name[id] = nm
			live = append(live, id)
			if err := oracle.Add(nm, id); err != nil {
				t.Fatal(err)
			}
			if err := paged.Add(nm, id); err != nil {
				t.Fatal(err)
			}
		}
		// ...then a random subtree-style removal.
		if len(live) > 30 && rng.Intn(2) == 0 {
			doomed := map[int]bool{}
			k := rng.Intn(20) + 1
			for i := 0; i < k; i++ {
				at := rng.Intn(len(live))
				doomed[live[at]] = true
			}
			if err := oracle.Remove(doomed, nameOf); err != nil {
				t.Fatal(err)
			}
			if err := paged.Remove(doomed, nameOf); err != nil {
				t.Fatal(err)
			}
			kept := live[:0]
			for _, id := range live {
				if !doomed[id] {
					kept = append(kept, id)
				} else {
					delete(w.ord, id)
					delete(w.name, id)
				}
			}
			live = kept
		}
		checkEqual(t, w, oracle, paged, names)
		switch round % 10 {
		case 3:
			if err := paged.Flush(); err != nil {
				t.Fatal(err)
			}
		case 7:
			if err := paged.Compact(); err != nil {
				t.Fatal(err)
			}
			checkEqual(t, w, oracle, paged, names)
		}
	}

	// Build() must reproduce the same state from a document-order walk.
	elems := append([]int(nil), oracle.Elems()...)
	rebuilt, err := OpenPaged(t.TempDir(), 8, w.binding())
	if err != nil {
		t.Fatal(err)
	}
	defer rebuilt.Close()
	if err := rebuilt.Build(elems, nameOf); err != nil {
		t.Fatal(err)
	}
	checkEqual(t, w, oracle, rebuilt, names)
}

// TestPagedCloneIsolation clones a paged backend and mutates the
// writer; the clone's view must stay frozen (copy-on-write pages).
func TestPagedCloneIsolation(t *testing.T) {
	w := newWorld()
	b, err := OpenPaged(t.TempDir(), 8, w.binding())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 400; i++ {
		w.ord[i] = uint64(i)
		w.name[i] = "n"
		if err := b.Add("n", i); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := b.Clone(w.binding())
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int(nil), snap.Elems()...)
	doomed := map[int]bool{}
	for i := 0; i < 400; i += 2 {
		doomed[i] = true
	}
	if err := b.Remove(doomed, func(id int) string { return "n" }); err != nil {
		t.Fatal(err)
	}
	for i := 400; i < 500; i++ {
		w.ord[i] = uint64(i)
		w.name[i] = "n"
		if err := b.Add("n", i); err != nil {
			t.Fatal(err)
		}
	}
	if got := snap.Elems(); !sameIDs(got, before) {
		t.Fatalf("snapshot view changed under writer mutations")
	}
	if snap.Entries() != 400 {
		t.Fatalf("snapshot entries %d, want 400", snap.Entries())
	}
	if b.Entries() != 300 {
		t.Fatalf("writer entries %d, want 300", b.Entries())
	}
}

// TestPagedRemoveUnknownName: removing elements whose name was never
// indexed must be a no-op that does not allocate name-table ids — a
// name first seen in a delete would otherwise grow nameIDs (and every
// future clone's copy) forever.
func TestPagedRemoveUnknownName(t *testing.T) {
	w := newWorld()
	b, err := OpenPaged(t.TempDir(), 8, w.binding())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 10; i++ {
		w.ord[i] = uint64(i)
		w.name[i] = "known"
		if err := b.Add("known", i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 20; i++ {
		w.ord[i] = uint64(i)
	}
	p := b.(*paged)
	namesBefore := len(p.nameIDs)
	doomed := map[int]bool{}
	for i := 10; i < 20; i++ {
		doomed[i] = true
	}
	err = b.Remove(doomed, func(id int) string { return fmt.Sprintf("never-indexed-%d", id) })
	if err != nil {
		t.Fatal(err)
	}
	if len(p.nameIDs) != namesBefore || len(p.nameList) != namesBefore {
		t.Fatalf("remove of unknown names grew the name table: %d ids, %d listed, want %d",
			len(p.nameIDs), len(p.nameList), namesBefore)
	}
	if b.Entries() != 10 {
		t.Fatalf("entries %d, want 10", b.Entries())
	}
}

// TestPagedRequiresOrderedKeys: a Binding without Key must be refused.
func TestPagedRequiresOrderedKeys(t *testing.T) {
	_, err := OpenPaged(t.TempDir(), 8, Binding{Before: func(a, b int) bool { return a < b }})
	if err != ErrNoOrderedKeys {
		t.Fatalf("err = %v, want ErrNoOrderedKeys", err)
	}
}

// TestSliceCloneSharesNothing guards the slice clone's independence.
func TestSliceCloneSharesNothing(t *testing.T) {
	w := newWorld()
	s := NewSlice(w.binding())
	for i := 0; i < 10; i++ {
		w.ord[i] = uint64(i)
		w.name[i] = "x"
		if err := s.Add("x", i); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := s.Clone(w.binding())
	if err != nil {
		t.Fatal(err)
	}
	w.ord[10] = 100
	w.name[10] = "x"
	if err := s.Add("x", 10); err != nil {
		t.Fatal(err)
	}
	if len(cl.IDs("x")) != 10 || len(s.IDs("x")) != 11 {
		t.Fatalf("clone %d / original %d, want 10 / 11", len(cl.IDs("x")), len(s.IDs("x")))
	}
	if !reflect.DeepEqual(cl.Elems(), []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}) {
		t.Fatalf("clone elems %v", cl.Elems())
	}
}

// TestStatsShape: both backends report coherent Stats.
func TestStatsShape(t *testing.T) {
	w := newWorld()
	s := NewSlice(w.binding())
	p, err := OpenPaged(t.TempDir(), 8, w.binding())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 1000; i++ {
		w.ord[i] = uint64(i)
		w.name[i] = "e"
		if err := s.Add("e", i); err != nil {
			t.Fatal(err)
		}
		if err := p.Add("e", i); err != nil {
			t.Fatal(err)
		}
	}
	ss, ps := s.Stats(), p.Stats()
	if ss.Backend != "slice" || ss.Entries != 1000 {
		t.Fatalf("slice stats %+v", ss)
	}
	if ps.Backend != "paged" || ps.Entries != 1000 || ps.AllocatedPages == 0 {
		t.Fatalf("paged stats %+v", ps)
	}
	if ps.ResidentPages > 8+1 { // clamped cache budget bounds residency
		t.Fatalf("resident pages %d exceed budget", ps.ResidentPages)
	}
	if s.MemoryFootprint() <= 0 || p.MemoryFootprint() <= 0 {
		t.Fatal("zero memory footprint")
	}
}
