package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	dynxml "repro"
	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/xmltree"
)

// maxBodyBytes bounds request bodies; a batch of a few hundred
// thousand small edits still fits comfortably.
const maxBodyBytes = 64 << 20

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeJSON parses the request body into dst, rejecting unknown
// fields and trailing garbage with a 400. A missing or empty body is
// allowed when allowEmpty is set — dst keeps its zero value.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any, allowEmpty bool) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if allowEmpty && errors.Is(err, io.EOF) {
			return true
		}
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "invalid JSON body: trailing data")
		return false
	}
	return true
}

// withDoc pins the named document for the duration of fn. All the
// per-document handlers run through here, so eviction, lazy replay
// and not-found mapping are uniform.
func (s *Server) withDoc(w http.ResponseWriter, r *http.Request, fn func(h *dynxml.Handle)) {
	pin, err := s.cat.Acquire(r.PathValue("name"))
	if err != nil {
		fail(w, r, err)
		return
	}
	defer pin.Release()
	fn(pin.Handle())
}

// ---------------------------------------------------------------------------
// Open / list / stats

type openRequest struct {
	// XML is the initial document text. Present: create the document
	// (conflict if it already exists). Absent: open an existing one.
	XML string `json:"xml,omitempty"`
	// Scheme picks the labeling scheme for a create (default: the
	// server's). An existing document keeps its recorded scheme.
	Scheme string `json:"scheme,omitempty"`
}

type docInfo struct {
	Name     string `json:"name"`
	Scheme   string `json:"scheme"`
	Nodes    int    `json:"nodes"`
	Created  bool   `json:"created,omitempty"`
	Resident bool   `json:"resident"`
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req openRequest
	if !decodeJSON(w, r, &req, true) {
		return
	}
	name := r.PathValue("name")
	var (
		pin     *catalog.Pin
		err     error
		created bool
	)
	if req.XML != "" {
		pin, err = s.cat.Create(name, req.XML, req.Scheme)
		created = true
	} else {
		pin, err = s.cat.Acquire(name)
	}
	if err != nil {
		fail(w, r, err)
		return
	}
	defer pin.Release()
	h := pin.Handle()
	writeJSON(w, http.StatusOK, docInfo{
		Name: name, Scheme: h.Scheme(), Nodes: h.Len(), Created: created, Resident: true,
	})
}

type listResponse struct {
	Documents     []docEntry `json:"documents"`
	ResidentDocs  int        `json:"resident_docs"`
	ResidentBytes int64      `json:"resident_bytes"`
	MemBudget     int64      `json:"mem_budget"`
	MaxOpen       int        `json:"max_open"`
}

type docEntry struct {
	Name     string `json:"name"`
	Resident bool   `json:"resident"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names, err := s.cat.Names()
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	st := s.cat.Stats()
	resp := listResponse{
		Documents:     make([]docEntry, 0, len(names)),
		ResidentDocs:  st.ResidentDocs,
		ResidentBytes: st.ResidentBytes,
		MemBudget:     st.MemBudget,
		MaxOpen:       st.MaxOpen,
	}
	for _, n := range names {
		resp.Documents = append(resp.Documents, docEntry{Name: n, Resident: s.cat.Resident(n)})
	}
	writeJSON(w, http.StatusOK, resp)
}

type journalInfo struct {
	Appended    uint64 `json:"appended"`
	Durable     uint64 `json:"durable"`
	Seq         uint64 `json:"seq"`
	Generation  uint64 `json:"generation"`
	Checkpoints uint64 `json:"checkpoints"`
	Mode        string `json:"mode"`
}

type replicaInfo struct {
	Seq           uint64 `json:"seq"`
	Horizon       uint64 `json:"horizon"`
	LeaderHorizon uint64 `json:"leader_horizon"`
	Generation    uint64 `json:"generation"`
	Resets        uint64 `json:"resets"`
	LastErr       string `json:"last_err,omitempty"`
}

type storageInfo struct {
	Backend        string  `json:"backend"`
	Entries        int     `json:"entries"`
	ResidentPages  int     `json:"resident_pages,omitempty"`
	AllocatedPages int     `json:"allocated_pages,omitempty"`
	CacheHits      uint64  `json:"cache_hits,omitempty"`
	CacheMisses    uint64  `json:"cache_misses,omitempty"`
	Writebacks     uint64  `json:"writebacks,omitempty"`
	CacheHitRatio  float64 `json:"cache_hit_ratio,omitempty"`
}

type statsResponse struct {
	Name      string       `json:"name"`
	Scheme    string       `json:"scheme"`
	Nodes     int          `json:"nodes"`
	Relabeled int64        `json:"relabeled"`
	Storage   *storageInfo `json:"storage,omitempty"`
	Journal   *journalInfo `json:"journal,omitempty"`
	Replica   *replicaInfo `json:"replica,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.withDoc(w, r, func(h *dynxml.Handle) {
		st := h.Stats()
		resp := statsResponse{
			Name:      r.PathValue("name"),
			Scheme:    st.Scheme,
			Nodes:     st.Nodes,
			Relabeled: st.Relabeled,
		}
		if st.Storage.Backend != "" {
			resp.Storage = &storageInfo{
				Backend:        st.Storage.Backend,
				Entries:        st.Storage.Entries,
				ResidentPages:  st.Storage.ResidentPages,
				AllocatedPages: st.Storage.AllocatedPages,
				CacheHits:      st.Storage.CacheHits,
				CacheMisses:    st.Storage.CacheMisses,
				Writebacks:     st.Storage.Writebacks,
				CacheHitRatio:  st.Storage.CacheHitRatio(),
			}
		}
		if st.Journaled {
			resp.Journal = &journalInfo{
				Appended:    st.Journal.Appended,
				Durable:     st.Journal.Durable,
				Seq:         st.Journal.Seq,
				Generation:  st.Journal.Generation,
				Checkpoints: st.Journal.Checkpoints,
				Mode:        st.Journal.Mode.String(),
			}
		}
		if st.Following {
			resp.Replica = &replicaInfo{
				Seq:           st.Replica.Seq,
				Horizon:       st.Replica.Horizon,
				LeaderHorizon: st.Replica.LeaderHorizon,
				Generation:    st.Replica.Generation,
				Resets:        st.Replica.Resets,
				LastErr:       st.Replica.LastErr,
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

func (s *Server) handleXML(w http.ResponseWriter, r *http.Request) {
	s.withDoc(w, r, func(h *dynxml.Handle) {
		w.Header().Set("Content-Type", "application/xml")
		_, _ = io.WriteString(w, h.XML())
	})
}

// ---------------------------------------------------------------------------
// Query / explain

type queryRequest struct {
	Path string `json:"path"`
}

type queryResponse struct {
	Count int   `json:"count"`
	IDs   []int `json:"ids"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeJSON(w, r, &req, false) {
		return
	}
	s.withDoc(w, r, func(h *dynxml.Handle) {
		ids, err := h.QueryString(req.Path)
		if err != nil {
			fail(w, r, err)
			return
		}
		if ids == nil {
			ids = []int{}
		}
		writeJSON(w, http.StatusOK, queryResponse{Count: len(ids), IDs: ids})
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeJSON(w, r, &req, false) {
		return
	}
	s.withDoc(w, r, func(h *dynxml.Handle) {
		report, err := h.Explain(req.Path)
		if err != nil {
			fail(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"explain": report})
	})
}

// ---------------------------------------------------------------------------
// Edits

// editRequest is the wire form of one edit. Fragment carries an
// insert-tree's subtree as XML text; it is parsed server-side and its
// root element becomes the inserted fragment.
type editRequest struct {
	Op       string `json:"op"` // insert-element | insert-tree | delete
	Parent   int    `json:"parent,omitempty"`
	Pos      int    `json:"pos,omitempty"`
	Name     string `json:"name,omitempty"`
	Fragment string `json:"fragment,omitempty"`
	Node     int    `json:"node,omitempty"`
}

// toEdit validates and converts the wire form.
func (e *editRequest) toEdit() (dynxml.Edit, error) {
	switch e.Op {
	case "insert-element":
		if e.Name == "" {
			return dynxml.Edit{}, errors.New("insert-element requires name")
		}
		return dynxml.Edit{Op: dynxml.OpInsertElement, Parent: e.Parent, Pos: e.Pos, Name: e.Name}, nil
	case "insert-tree":
		doc, err := xmltree.ParseString(e.Fragment)
		if err != nil {
			return dynxml.Edit{}, fmt.Errorf("insert-tree fragment: %w", err)
		}
		return dynxml.Edit{Op: dynxml.OpInsertTree, Parent: e.Parent, Pos: e.Pos, Fragment: doc.Root}, nil
	case "delete":
		return dynxml.Edit{Op: dynxml.OpDeleteSubtree, Node: e.Node}, nil
	default:
		return dynxml.Edit{}, fmt.Errorf("unknown op %q (valid: insert-element, insert-tree, delete)", e.Op)
	}
}

type editResult struct {
	IDs       []int `json:"ids,omitempty"`
	Relabeled int   `json:"relabeled"`
	Removed   int   `json:"removed,omitempty"`
}

type editResponse struct {
	Results []editResult `json:"results"`
	Applied int          `json:"applied"`
	// Seq is the journal sequence covering this edit (the handle's
	// current sequence after the batch landed): the read-your-writes
	// anchor a client hands to a follower's horizon wait. Zero on an
	// unjournaled document.
	Seq uint64 `json:"seq,omitempty"`
}

// editSeq reads the journal sequence after a successful edit. Under
// concurrent writers it may cover later batches too; waiting on a
// later sequence is always safe for read-your-writes.
func editSeq(h *dynxml.Handle) uint64 {
	st := h.Stats()
	if !st.Journaled {
		return 0
	}
	return st.Journal.Seq
}

func toResults(in []dynxml.EditResult) []editResult {
	out := make([]editResult, len(in))
	for i, r := range in {
		out[i] = editResult{IDs: r.IDs, Relabeled: r.Relabeled, Removed: r.Removed}
	}
	return out
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	var req editRequest
	if !decodeJSON(w, r, &req, false) {
		return
	}
	edit, err := req.toEdit()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	s.withDoc(w, r, func(h *dynxml.Handle) {
		results, err := h.ApplyBatch([]dynxml.Edit{edit})
		if err != nil {
			fail(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, editResponse{Results: toResults(results), Applied: len(results), Seq: editSeq(h)})
	})
}

type batchRequest struct {
	Edits []editRequest `json:"edits"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeJSON(w, r, &req, false) {
		return
	}
	if len(req.Edits) == 0 {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "batch requires at least one edit")
		return
	}
	edits := make([]dynxml.Edit, len(req.Edits))
	for i := range req.Edits {
		e, err := req.Edits[i].toEdit()
		if err != nil {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("edit %d: %s", i, err))
			return
		}
		edits[i] = e
	}
	s.withDoc(w, r, func(h *dynxml.Handle) {
		results, err := h.ApplyBatch(edits)
		if err != nil {
			fail(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, editResponse{Results: toResults(results), Applied: len(results), Seq: editSeq(h)})
	})
}

// ---------------------------------------------------------------------------
// Durability / lifecycle

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	s.withDoc(w, r, func(h *dynxml.Handle) {
		if err := h.Sync(); err != nil {
			fail(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"synced": true})
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	s.withDoc(w, r, func(h *dynxml.Handle) {
		if err := h.Checkpoint(); err != nil {
			fail(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"checkpointed": true})
	})
}

// handleClose checkpoints and closes the named document's resident
// handle without touching its journal — the document stays openable.
// It deliberately does not Acquire: closing a non-resident document
// is a no-op, not a replay.
func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	if err := s.cat.Evict(r.PathValue("name")); err != nil {
		fail(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
}

// ---------------------------------------------------------------------------
// Introspection

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = metrics.Default.WriteJSON(w)
}
