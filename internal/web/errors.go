package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	dynxml "repro"
	"repro/internal/catalog"
)

// errorBody is the JSON envelope every non-2xx response carries. The
// request id lets a client quote the exact server-side request in a
// bug report; it matches the X-Request-ID response header.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id"`
}

// writeError renders err (or a plain message) as the JSON error
// envelope with the given status.
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, RequestID: RequestID(r.Context())})
}

// mapError translates a catalog or document error into an HTTP status
// and client-facing message. Unrecognized errors are reported as 400:
// every error the document layer returns on a live handle is induced
// by the request (bad ids, malformed paths, rejected edits) — real
// server faults surface as panics and take the 500 path instead.
func mapError(err error) (int, string) {
	switch {
	case errors.Is(err, catalog.ErrNotFound):
		return http.StatusNotFound, err.Error()
	case errors.Is(err, catalog.ErrExists):
		return http.StatusConflict, err.Error()
	case errors.Is(err, catalog.ErrBadName):
		return http.StatusBadRequest, err.Error()
	case errors.Is(err, dynxml.ErrUnknownScheme):
		return http.StatusBadRequest,
			fmt.Sprintf("%s (valid schemes: %s)", err, strings.Join(dynxml.Schemes(), ", "))
	case errors.Is(err, dynxml.ErrClosed), errors.Is(err, catalog.ErrCatalogClosed):
		// The handle was evicted or the server is draining; the client
		// can retry and the catalog will replay the document.
		return http.StatusServiceUnavailable, err.Error()
	default:
		return http.StatusBadRequest, err.Error()
	}
}

// fail maps err and writes the error envelope.
func fail(w http.ResponseWriter, r *http.Request, err error) {
	status, msg := mapError(err)
	writeError(w, r, status, msg)
}
