package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	dynxml "repro"
	"repro/internal/catalog"
)

// Stable machine-readable error codes, carried in every error
// envelope's "code" field. Clients branch on these, never on the
// human-readable message text.
const (
	CodeNotFound      = "not_found"
	CodeExists        = "exists"
	CodeBadName       = "bad_name"
	CodeUnknownScheme = "unknown_scheme"
	CodeUnavailable   = "unavailable"
	CodeReadOnly      = "read_only"
	CodeBadRequest    = "bad_request"
	CodeTimeout       = "timeout"
	CodeInternal      = "internal"
)

// errorBody is the JSON envelope every non-2xx response carries. Code
// is the stable machine-readable classification; the request id lets a
// client quote the exact server-side request in a bug report and
// matches the X-Request-ID response header.
type errorBody struct {
	Error     string `json:"error"`
	Code      string `json:"code"`
	RequestID string `json:"request_id"`
}

// writeError renders a message as the JSON error envelope with the
// given status and code.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, Code: code, RequestID: RequestID(r.Context())})
}

// mapError translates a catalog or document error into an HTTP status,
// a stable error code and a client-facing message. Unrecognized errors
// are reported as 400: every error the document layer returns on a
// live handle is induced by the request (bad ids, malformed paths,
// rejected edits) — real server faults surface as panics and take the
// 500 path instead.
func mapError(err error) (int, string, string) {
	switch {
	case errors.Is(err, catalog.ErrNotFound), errors.Is(err, dynxml.ErrNotFound):
		return http.StatusNotFound, CodeNotFound, err.Error()
	case errors.Is(err, catalog.ErrExists):
		return http.StatusConflict, CodeExists, err.Error()
	case errors.Is(err, catalog.ErrBadName):
		return http.StatusBadRequest, CodeBadName, err.Error()
	case errors.Is(err, dynxml.ErrUnknownScheme):
		return http.StatusBadRequest, CodeUnknownScheme,
			fmt.Sprintf("%s (valid schemes: %s)", err, strings.Join(dynxml.Schemes(), ", "))
	case errors.Is(err, dynxml.ErrReadOnly):
		// A follower serves reads only; writes belong on the leader.
		return http.StatusForbidden, CodeReadOnly, err.Error()
	case errors.Is(err, dynxml.ErrClosed), errors.Is(err, catalog.ErrCatalogClosed):
		// The handle was evicted or the server is draining; the client
		// can retry and the catalog will replay the document.
		return http.StatusServiceUnavailable, CodeUnavailable, err.Error()
	default:
		return http.StatusBadRequest, CodeBadRequest, err.Error()
	}
}

// fail maps err and writes the error envelope.
func fail(w http.ResponseWriter, r *http.Request, err error) {
	status, code, msg := mapError(err)
	writeError(w, r, status, code, msg)
}
