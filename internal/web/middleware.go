package web

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/metrics"
)

// Server-wide HTTP metrics; per-route families are built per
// registered route in newRouteMetrics.
var (
	mRequests = metrics.Default.Counter("web_requests_total")
	mInflight = metrics.Default.Gauge("web_inflight_requests")
	mPanics   = metrics.Default.Counter("web_panics_total")
	mTimeouts = metrics.Default.Counter("web_timeouts_total")
)

// ctxKey is the private context-key namespace for this package.
type ctxKey int

const ctxRequestID ctxKey = iota

// RequestID returns the request id the middleware assigned (or
// accepted from the client's X-Request-ID header), or "" outside a
// served request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}

// newRequestID returns 16 hex chars of crypto randomness — unique
// enough to grep one request out of any log volume this server sees.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// withRequestID assigns every request an id, echoing a client-chosen
// X-Request-ID when present, and reflects it in the response header
// so clients and server logs can be correlated.
func withRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 128 {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxRequestID, id)))
	})
}

// withRecover converts a handler panic into a JSON 500 carrying the
// request id, keeping the connection (and the server) alive. It runs
// innermost — inside the timeout goroutine — so panics on the
// timeout's handler goroutine are caught where they happen.
func withRecover(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				mPanics.Inc()
				log.Printf("web: panic serving %s %s (request %s): %v\n%s",
					r.Method, r.URL.Path, RequestID(r.Context()), p, debug.Stack())
				writeError(w, r, http.StatusInternalServerError, CodeInternal, "internal error")
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// bufferedResponse captures a handler's full response so the timeout
// middleware can atomically either flush it or discard it in favor of
// a 504 — never interleave the two.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: make(http.Header)}
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.WriteHeader(http.StatusOK)
	return b.body.Write(p)
}

// flush copies the buffered response onto the real writer.
func (b *bufferedResponse) flush(w http.ResponseWriter) int {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body.Bytes())
	return b.status
}

// withTimeout bounds a request's wall time: the handler runs on its
// own goroutine against a buffered response, and whichever finishes
// first — handler or deadline — owns the connection. A timed-out
// handler keeps running against the discarded buffer until it
// observes its cancelled context; its writes go nowhere.
func withTimeout(d time.Duration, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		rec := newBufferedResponse()
		done := make(chan struct{})
		go func() {
			defer close(done)
			h.ServeHTTP(rec, r.WithContext(ctx))
		}()
		select {
		case <-done:
			rec.flush(w)
		case <-ctx.Done():
			mTimeouts.Inc()
			writeError(w, r, http.StatusGatewayTimeout, CodeTimeout, "request timed out")
		}
	})
}

// statusWriter records the status code a handler chose so the metrics
// layer can bucket it by class.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(p []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so streaming routes (SSE)
// work through the metrics layer.
func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeMetrics is one route's instrument family on the process
// registry: latency, in-flight gauge and status-class counters, all
// keyed web_route_<route>_*.
type routeMetrics struct {
	latency  *metrics.Histogram
	inflight *metrics.Gauge
	c2xx     *metrics.Counter
	c4xx     *metrics.Counter
	c5xx     *metrics.Counter
}

func newRouteMetrics(route string) *routeMetrics {
	p := "web_route_" + route + "_"
	return &routeMetrics{
		latency:  metrics.Default.Histogram(p+"latency_seconds", nil),
		inflight: metrics.Default.Gauge(p + "inflight"),
		c2xx:     metrics.Default.Counter(p + "responses_2xx_total"),
		c4xx:     metrics.Default.Counter(p + "responses_4xx_total"),
		c5xx:     metrics.Default.Counter(p + "responses_5xx_total"),
	}
}

// observe records one finished request.
func (m *routeMetrics) observe(status int, elapsed time.Duration) {
	m.latency.Observe(elapsed.Seconds())
	switch {
	case status >= 500:
		m.c5xx.Inc()
	case status >= 400:
		m.c4xx.Inc()
	default:
		m.c2xx.Inc()
	}
}

// withMetrics wraps a route's handler with its instrument family and
// the server-wide counters. It sits outside the timeout layer, so a
// 504 is what gets recorded for a timed-out request.
func withMetrics(m *routeMetrics, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		mInflight.Add(1)
		m.inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			m.inflight.Add(-1)
			mInflight.Add(-1)
			m.observe(sw.status, time.Since(start))
		}()
		h.ServeHTTP(sw, r)
	})
}
