// Package web is the HTTP surface over a document catalog: a
// JSON/REST API exposing named dynxml documents — open, query,
// explain, edit, batch-edit, sync, checkpoint, close — plus health
// and metrics introspection. Every route runs through a middleware
// stack (request id, per-route metrics, wall-clock timeout, panic
// recovery) and pins its document through catalog.Acquire, so
// eviction and lazy replay are invisible to clients.
//
// The route surface:
//
//	POST /v1/docs/{name}/open        {xml?, scheme?} — create (xml set) or open
//	GET  /v1/docs                    list documents and residency
//	GET  /v1/docs/{name}             per-document stats incl. journal counters
//	GET  /v1/docs/{name}/xml         serialized document
//	POST /v1/docs/{name}/query      {path} → {count, ids}
//	POST /v1/docs/{name}/explain    {path} → {explain}
//	POST /v1/docs/{name}/edit       one edit (insert-element | insert-tree | delete)
//	POST /v1/docs/{name}/batch      {edits: [...]} applied atomically per chunk
//	POST /v1/docs/{name}/sync       force durability point
//	POST /v1/docs/{name}/checkpoint bound future replay time
//	POST /v1/docs/{name}/close      evict the resident handle (journal stays)
//	GET  /v1/docs/{name}/journal    binary ship chunk for followers (?from, ?limit, ?waitms)
//	GET  /v1/docs/{name}/horizon    durable horizon; read-your-writes wait (?min, ?waitms)
//	GET  /v1/docs/{name}/watch      SSE stream of change notifications (?path)
//	GET  /healthz                   liveness
//	GET  /debug/vars                process metrics registry as JSON
//
// Unversioned /docs... routes answer 308 Permanent Redirect to their
// /v1 equivalents.
package web

import (
	"net/http"
	"time"

	"repro/internal/catalog"
)

// DefaultTimeout bounds a request's wall time when Config.Timeout is
// zero.
const DefaultTimeout = 30 * time.Second

// Config parameterizes New.
type Config struct {
	// Catalog is the document residency layer the server fronts.
	// Required.
	Catalog *catalog.Catalog
	// Timeout is the per-request wall bound (0: DefaultTimeout,
	// negative: no timeout). Requests past it get a JSON 504; the
	// abandoned handler keeps running against a discarded buffer.
	Timeout time.Duration
}

// Server is the HTTP API over one catalog. It is an http.Handler.
type Server struct {
	cat     *catalog.Catalog
	timeout time.Duration
	handler http.Handler
}

// New wires the route table and middleware stack.
func New(cfg Config) *Server {
	s := &Server{cat: cfg.Catalog, timeout: cfg.Timeout}
	if s.timeout == 0 {
		s.timeout = DefaultTimeout
	}
	mux := http.NewServeMux()
	s.route(mux, "POST /v1/docs/{name}/open", "open", s.handleOpen)
	s.route(mux, "GET /v1/docs", "list", s.handleList)
	s.route(mux, "GET /v1/docs/{name}", "stats", s.handleStats)
	s.route(mux, "GET /v1/docs/{name}/xml", "xml", s.handleXML)
	s.route(mux, "POST /v1/docs/{name}/query", "query", s.handleQuery)
	s.route(mux, "POST /v1/docs/{name}/explain", "explain", s.handleExplain)
	s.route(mux, "POST /v1/docs/{name}/edit", "edit", s.handleEdit)
	s.route(mux, "POST /v1/docs/{name}/batch", "batch", s.handleBatch)
	s.route(mux, "POST /v1/docs/{name}/sync", "sync", s.handleSync)
	s.route(mux, "POST /v1/docs/{name}/checkpoint", "checkpoint", s.handleCheckpoint)
	s.route(mux, "POST /v1/docs/{name}/close", "close", s.handleClose)
	// The replication sync surface streams or long-polls, so it runs
	// without the buffering timeout middleware and bounds its own waits.
	s.routeStream(mux, "GET /v1/docs/{name}/journal", "journal", s.handleJournal)
	s.routeStream(mux, "GET /v1/docs/{name}/horizon", "horizon", s.handleHorizon)
	s.routeStream(mux, "GET /v1/docs/{name}/watch", "watch", s.handleWatch)
	// Unversioned routes from before the /v1 surface answer with a 308
	// so old clients learn the new location without losing the method
	// or body.
	mux.Handle("/docs", redirectV1())
	mux.Handle("/docs/", redirectV1())
	// Introspection routes skip the timeout and per-route metrics:
	// they must answer even when the API is saturated, and scraping
	// them should not perturb what they report.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.handler = withRequestID(mux)
	return s
}

// redirectV1 sends unversioned /docs... requests to their /v1
// equivalent with 308 Permanent Redirect, which preserves the request
// method and body across the retry.
func redirectV1() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		target := "/v1" + r.URL.Path
		if r.URL.RawQuery != "" {
			target += "?" + r.URL.RawQuery
		}
		http.Redirect(w, r, target, http.StatusPermanentRedirect)
	})
}

// route registers one API route under the full middleware stack.
// Recovery sits innermost so it runs on the timeout's handler
// goroutine; metrics sit outermost so a timed-out request is recorded
// as its client saw it — a 504.
func (s *Server) route(mux *http.ServeMux, pattern, name string, h http.HandlerFunc) {
	mux.Handle(pattern, withMetrics(newRouteMetrics(name), withTimeout(s.timeout, withRecover(h))))
}

// routeStream registers a streaming or long-polling route: metrics and
// recovery, but no timeout layer — its buffered response would defeat
// SSE flushing and kill parked long-polls. Stream handlers bound their
// own waits and stop on request-context cancellation.
func (s *Server) routeStream(mux *http.ServeMux, pattern, name string, h http.HandlerFunc) {
	mux.Handle(pattern, withMetrics(newRouteMetrics(name), withRecover(h)))
}

// ServeHTTP dispatches through the middleware stack.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}
