package web

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	dynxml "repro"
)

// The replication sync surface: followers pull binary journal chunks
// from GET /v1/docs/{name}/journal, read-your-writes clients wait on
// GET /v1/docs/{name}/horizon, and subscribers stream coalesced change
// notifications from GET /v1/docs/{name}/watch as server-sent events.
// These routes stream or long-poll, so they bypass the buffering
// timeout middleware (routeStream) and instead bound their own waits.

// Long-poll and stream bounds.
const (
	maxWaitMS      = 60_000           // cap on ?waitms long-poll waits
	watchHeartbeat = 15 * time.Second // SSE keep-alive comment cadence
	maxShipLimit   = 1 << 16          // matches the ship protocol's chunk cap
)

// queryUint parses an unsigned query parameter, with def when absent.
func queryUint(r *http.Request, key string, def uint64) (uint64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: want an unsigned integer", key, s)
	}
	return v, nil
}

// handleJournal serves one encoded ship chunk: everything after
// position ?from (absent or "scratch": a from-scratch fetch answered
// with the current checkpoint snapshot), at most ?limit batches.
// ?waitms long-polls: when the durable horizon has nothing past from
// yet, the handler waits up to that many milliseconds for new durable
// batches before answering, so a quiet leader costs followers one
// cheap parked request instead of a busy poll loop.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	from := uint64(dynxml.FromScratch)
	if fs := r.URL.Query().Get("from"); fs != "" && fs != "scratch" {
		v, err := queryUint(r, "from", 0)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
		from = v
	}
	limit, err := queryUint(r, "limit", 512)
	if err != nil || limit == 0 || limit > maxShipLimit {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "bad limit: want 1..65536")
		return
	}
	waitms, err := queryUint(r, "waitms", 0)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	s.withDoc(w, r, func(h *dynxml.Handle) {
		// A from-scratch fetch always has a snapshot to serve; only a
		// positioned follower that is already caught up parks here.
		if waitms > 0 && from != uint64(dynxml.FromScratch) && h.Horizon() <= from {
			// Best-effort park: whether the horizon moved or the wait
			// expired, Ship below serves whatever is durable now.
			_, _, _ = h.FollowHorizon(from+1, time.Duration(min(waitms, maxWaitMS))*time.Millisecond)
		}
		chunk, err := h.Ship(from, int(limit))
		if err != nil {
			fail(w, r, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(chunk)
	})
}

// horizonResponse answers a horizon poll: the durable horizon observed
// and whether the requested minimum was reached before the wait ended.
type horizonResponse struct {
	Horizon uint64 `json:"horizon"`
	Reached bool   `json:"reached"`
}

// handleHorizon reports the document's durable horizon. ?min with
// ?waitms turns it into the read-your-writes wait: block until the
// horizon reaches min or the wait expires, then report both.
func (s *Server) handleHorizon(w http.ResponseWriter, r *http.Request) {
	minSeq, err := queryUint(r, "min", 0)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	waitms, err := queryUint(r, "waitms", 0)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	s.withDoc(w, r, func(h *dynxml.Handle) {
		hor, reached, err := h.FollowHorizon(minSeq, time.Duration(min(waitms, maxWaitMS))*time.Millisecond)
		if err != nil {
			fail(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, horizonResponse{Horizon: hor, Reached: reached})
	})
}

// handleWatch subscribes ?path on the document and streams coalesced
// change notifications as server-sent events: one "data:" line of
// Notification JSON per burst, comment heartbeats while quiet. The
// stream ends when the client disconnects or the document closes; the
// document stays pinned (never evicted) for the stream's lifetime.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Query().Get("path")
	if path == "" {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "watch requires ?path")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, CodeInternal, "streaming unsupported")
		return
	}
	s.withDoc(w, r, func(h *dynxml.Handle) {
		ch, cancel, err := h.Watch(path)
		if err != nil {
			fail(w, r, err)
			return
		}
		defer cancel()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		// An initial comment commits the response head so the client's
		// subscription is live before any edit it triggers.
		_, _ = fmt.Fprintf(w, ": watching %s\n\n", path)
		fl.Flush()
		heartbeat := time.NewTicker(watchHeartbeat)
		defer heartbeat.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-heartbeat.C:
				if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
					return
				}
				fl.Flush()
			case n, ok := <-ch:
				if !ok {
					return
				}
				buf, err := json.Marshal(n)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "data: %s\n\n", buf); err != nil {
					return
				}
				fl.Flush()
			}
		}
	})
}
