package web

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/journal"
)

// TestUnversionedRedirect is the only place unversioned routes may
// appear: every pre-/v1 path answers 308 to its /v1 twin, preserving
// method, query and (per 308 semantics) body on the client's retry.
func TestUnversionedRedirect(t *testing.T) {
	s, _ := newTestServer(t, 0)
	cases := []struct {
		method, path, want string
	}{
		{"GET", "/docs", "/v1/docs"},
		{"GET", "/docs/alpha", "/v1/docs/alpha"},
		{"POST", "/docs/alpha/open", "/v1/docs/alpha/open"},
		{"POST", "/docs/alpha/query", "/v1/docs/alpha/query"},
		{"GET", "/docs/alpha/journal?from=3&limit=5", "/v1/docs/alpha/journal?from=3&limit=5"},
	}
	for _, tc := range cases {
		w := do(s, tc.method, tc.path, "")
		if w.Code != http.StatusPermanentRedirect {
			t.Errorf("%s %s: status %d, want 308", tc.method, tc.path, w.Code)
			continue
		}
		if loc := w.Header().Get("Location"); loc != tc.want {
			t.Errorf("%s %s: Location %q, want %q", tc.method, tc.path, loc, tc.want)
		}
	}
}

// TestErrorCodes asserts the machine-readable code field on the main
// error classes.
func TestErrorCodes(t *testing.T) {
	s, _ := newTestServer(t, 0)
	mustOpen(t, s, "alpha", seed)

	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"POST", "/v1/docs/ghost/open", "", http.StatusNotFound, CodeNotFound},
		{"POST", "/v1/docs/alpha/open", `{"xml":"<x/>"}`, http.StatusConflict, CodeExists},
		{"POST", "/v1/docs/.bad/open", "", http.StatusBadRequest, CodeBadName},
		{"POST", "/v1/docs/nope/open", `{"xml":"<x/>","scheme":"No-Such"}`, http.StatusBadRequest, CodeUnknownScheme},
		{"POST", "/v1/docs/alpha/query", `{"path":"///"}`, http.StatusBadRequest, CodeBadRequest},
		{"GET", "/v1/docs/alpha/journal?limit=0", "", http.StatusBadRequest, CodeBadRequest},
		{"GET", "/v1/docs/alpha/watch", "", http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		w := do(s, tc.method, tc.path, tc.body)
		if w.Code != tc.status {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.method, tc.path, w.Code, tc.status, w.Body.String())
			continue
		}
		if e := decodeErr(t, w); e.Code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, e.Code, tc.code)
		}
	}
}

// TestJournalAndHorizon exercises the binary journal endpoint and the
// horizon long-poll against a live document.
func TestJournalAndHorizon(t *testing.T) {
	s, _ := newTestServer(t, 0)
	mustOpen(t, s, "alpha", seed)

	// Find the root id, apply one edit, note its seq.
	w := do(s, "POST", "/v1/docs/alpha/query", `{"path":"/root"}`)
	var q struct {
		IDs []int `json:"ids"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil || len(q.IDs) != 1 {
		t.Fatalf("query: %v %s", err, w.Body.String())
	}
	w = do(s, "POST", "/v1/docs/alpha/edit",
		`{"op":"insert-element","parent":`+itoa(q.IDs[0])+`,"pos":0,"name":"c"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("edit: %d %s", w.Code, w.Body.String())
	}
	var ack struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ack); err != nil || ack.Seq == 0 {
		t.Fatalf("edit ack carries no seq: %v %s", err, w.Body.String())
	}

	// From-scratch chunk decodes and covers the edit.
	w = do(s, "GET", "/v1/docs/alpha/journal", "")
	if w.Code != http.StatusOK {
		t.Fatalf("journal: %d %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("journal content type %q", ct)
	}
	chunk, err := journal.DecodeShipStream(bytes.NewReader(w.Body.Bytes()), journal.FromScratch)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Snapshot == nil || chunk.Horizon != ack.Seq {
		t.Fatalf("chunk: snapshot %v horizon %d, want %d", chunk.Snapshot != nil, chunk.Horizon, ack.Seq)
	}

	// Positioned fetch from the edit's seq: nothing further.
	w = do(s, "GET", "/v1/docs/alpha/journal?from="+itoa(int(ack.Seq)), "")
	chunk, err = journal.DecodeShipStream(bytes.NewReader(w.Body.Bytes()), ack.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Snapshot != nil || len(chunk.Batches) != 0 {
		t.Fatalf("caught-up chunk not empty: %+v", chunk)
	}

	// Horizon: reached instantly at the ack'd seq; unreached above it.
	w = do(s, "GET", "/v1/docs/alpha/horizon?min="+itoa(int(ack.Seq)), "")
	var hz struct {
		Horizon uint64 `json:"horizon"`
		Reached bool   `json:"reached"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil || !hz.Reached || hz.Horizon < ack.Seq {
		t.Fatalf("horizon: %v %s", err, w.Body.String())
	}
	w = do(s, "GET", "/v1/docs/alpha/horizon?min="+itoa(int(ack.Seq+5))+"&waitms=10", "")
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil || hz.Reached {
		t.Fatalf("horizon past end claims reached: %v %s", err, w.Body.String())
	}
}

func itoa(n int) string {
	buf, _ := json.Marshal(n)
	return string(buf)
}
