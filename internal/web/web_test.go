package web

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
)

const seed = "<root><a></a><b></b></root>"

func newTestServer(t *testing.T, timeout time.Duration) (*Server, *catalog.Catalog) {
	t.Helper()
	cat, err := catalog.Open(catalog.Config{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cat.Close() })
	return New(Config{Catalog: cat, Timeout: timeout}), cat
}

// do runs one request through the full middleware stack.
func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// decodeErr parses the JSON error envelope.
func decodeErr(t *testing.T, w *httptest.ResponseRecorder) errorBody {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error response is not the JSON envelope: %v (body %q)", err, w.Body.String())
	}
	return e
}

func mustOpen(t *testing.T, s *Server, name, xml string) {
	t.Helper()
	w := do(s, "POST", "/v1/docs/"+name+"/open", fmt.Sprintf(`{"xml":%q}`, xml))
	if w.Code != http.StatusOK {
		t.Fatalf("open %s: %d %s", name, w.Code, w.Body.String())
	}
}

// TestErrorPaths is the satellite table: every client-visible error
// path of the API surface, each asserting status and the JSON
// envelope with a request id.
func TestErrorPaths(t *testing.T) {
	s, cat := newTestServer(t, 0)
	mustOpen(t, s, "alpha", seed)

	// A closed-but-still-resident handle: close it out from under the
	// catalog so the next pinned call sees ErrClosed.
	mustOpen(t, s, "corpse", seed)
	p, err := cat.Acquire("corpse")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Handle().Close(); err != nil {
		t.Fatal(err)
	}
	p.Release()

	tests := []struct {
		name    string
		method  string
		path    string
		body    string
		status  int
		contain string
	}{
		{"unknown doc stats", "GET", "/v1/docs/nope", "", http.StatusNotFound, "not found"},
		{"unknown doc query", "POST", "/v1/docs/nope/query", `{"path":"/root"}`, http.StatusNotFound, "not found"},
		{"unknown doc open without xml", "POST", "/v1/docs/nope/open", `{}`, http.StatusNotFound, "not found"},
		{"bad document name", "POST", "/v1/docs/a,b/query", `{"path":"/root"}`, http.StatusBadRequest, "invalid document name"},
		{"bad JSON body", "POST", "/v1/docs/alpha/query", `{"path":`, http.StatusBadRequest, "invalid JSON"},
		{"unknown JSON field", "POST", "/v1/docs/alpha/query", `{"paht":"/root"}`, http.StatusBadRequest, "invalid JSON"},
		{"trailing JSON garbage", "POST", "/v1/docs/alpha/query", `{"path":"/root"} {}`, http.StatusBadRequest, "trailing"},
		{"bad scheme on create", "POST", "/v1/docs/fresh/open", `{"xml":"<r></r>","scheme":"no-such-scheme"}`, http.StatusBadRequest, "valid schemes:"},
		{"create over existing doc", "POST", "/v1/docs/alpha/open", fmt.Sprintf(`{"xml":%q}`, seed), http.StatusConflict, "already exists"},
		{"bad query path", "POST", "/v1/docs/alpha/query", `{"path":"///"}`, http.StatusBadRequest, ""},
		{"unknown edit op", "POST", "/v1/docs/alpha/edit", `{"op":"rename"}`, http.StatusBadRequest, "unknown op"},
		{"insert-element without name", "POST", "/v1/docs/alpha/edit", `{"op":"insert-element","parent":0}`, http.StatusBadRequest, "requires name"},
		{"bad insert-tree fragment", "POST", "/v1/docs/alpha/edit", `{"op":"insert-tree","parent":0,"fragment":"<oops"}`, http.StatusBadRequest, "fragment"},
		{"edit on bad parent id", "POST", "/v1/docs/alpha/edit", `{"op":"insert-element","parent":999999,"name":"x"}`, http.StatusBadRequest, ""},
		{"empty batch", "POST", "/v1/docs/alpha/batch", `{"edits":[]}`, http.StatusBadRequest, "at least one"},
		{"bad edit inside batch", "POST", "/v1/docs/alpha/batch", `{"edits":[{"op":"rename"}]}`, http.StatusBadRequest, "edit 0"},
		{"closed handle", "POST", "/v1/docs/corpse/query", `{"path":"/root"}`, http.StatusServiceUnavailable, "closed"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := do(s, tc.method, tc.path, tc.body)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.status, w.Body.String())
			}
			e := decodeErr(t, w)
			if e.RequestID == "" {
				t.Error("error envelope has no request id")
			}
			if e.RequestID != w.Header().Get("X-Request-ID") {
				t.Errorf("envelope id %q != header id %q", e.RequestID, w.Header().Get("X-Request-ID"))
			}
			if tc.contain != "" && !strings.Contains(e.Error, tc.contain) {
				t.Errorf("error %q does not mention %q", e.Error, tc.contain)
			}
		})
	}
}

// TestRoundTrip drives the full happy-path surface: open, edit,
// batch, query, explain, stats, xml, sync, checkpoint, list, close,
// reopen — asserting no acknowledged edit is lost across the
// close/replay boundary.
func TestRoundTrip(t *testing.T) {
	s, cat := newTestServer(t, 0)
	mustOpen(t, s, "alpha", seed)

	// Find the root id.
	w := do(s, "POST", "/v1/docs/alpha/query", `{"path":"/root"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
	var q queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Count != 1 {
		t.Fatalf("root query count = %d, want 1", q.Count)
	}
	root := q.IDs[0]

	// One single edit, then a batch of three.
	w = do(s, "POST", "/v1/docs/alpha/edit",
		fmt.Sprintf(`{"op":"insert-element","parent":%d,"pos":0,"name":"x"}`, root))
	if w.Code != http.StatusOK {
		t.Fatalf("edit: %d %s", w.Code, w.Body.String())
	}
	batch := fmt.Sprintf(`{"edits":[
		{"op":"insert-element","parent":%d,"pos":0,"name":"x"},
		{"op":"insert-tree","parent":%d,"pos":0,"fragment":"<x><y></y></x>"},
		{"op":"insert-element","parent":%d,"pos":0,"name":"x"}]}`, root, root, root)
	w = do(s, "POST", "/v1/docs/alpha/batch", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	var br editResponse
	if err := json.Unmarshal(w.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	if br.Applied != 3 {
		t.Fatalf("batch applied = %d, want 3", br.Applied)
	}

	w = do(s, "POST", "/v1/docs/alpha/query", `{"path":"/root/x"}`)
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Count != 4 {
		t.Fatalf("after edits /root/x count = %d, want 4", q.Count)
	}

	w = do(s, "POST", "/v1/docs/alpha/explain", `{"path":"/root/x"}`)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "strategy") {
		t.Fatalf("explain: %d %s", w.Code, w.Body.String())
	}

	w = do(s, "GET", "/v1/docs/alpha", "")
	var st statsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Journal == nil || st.Journal.Appended == 0 {
		t.Fatalf("stats journal = %+v, want appended > 0", st.Journal)
	}

	w = do(s, "GET", "/v1/docs/alpha/xml", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "<y>") {
		t.Fatalf("xml: %d %s", w.Code, w.Body.String())
	}

	for _, route := range []string{"sync", "checkpoint"} {
		if w = do(s, "POST", "/v1/docs/alpha/"+route, ""); w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", route, w.Code, w.Body.String())
		}
	}

	w = do(s, "GET", "/v1/docs", "")
	var list listResponse
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Documents) != 1 || list.Documents[0].Name != "alpha" || !list.Documents[0].Resident {
		t.Fatalf("list = %+v, want one resident alpha", list)
	}

	// Close evicts; reopening (no xml) replays every acknowledged edit.
	if w = do(s, "POST", "/v1/docs/alpha/close", ""); w.Code != http.StatusOK {
		t.Fatalf("close: %d %s", w.Code, w.Body.String())
	}
	if cat.Resident("alpha") {
		t.Fatal("alpha resident after close")
	}
	if w = do(s, "POST", "/v1/docs/alpha/open", ""); w.Code != http.StatusOK {
		t.Fatalf("reopen: %d %s", w.Code, w.Body.String())
	}
	w = do(s, "POST", "/v1/docs/alpha/query", `{"path":"/root/x"}`)
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Count != 4 {
		t.Fatalf("after close/reopen /root/x count = %d, want 4 — an acknowledged edit was lost", q.Count)
	}
}

// TestTimeoutMiddleware drives a deliberately slow handler through
// the stack and asserts the client sees a JSON 504 carrying the
// request id while the handler's late write is discarded.
func TestTimeoutMiddleware(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("too late"))
	})
	h := withRequestID(withMetrics(newRouteMetrics("slowtest"), withTimeout(20*time.Millisecond, withRecover(slow))))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/slow", nil))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", w.Code)
	}
	var e errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("504 body is not the JSON envelope: %q", w.Body.String())
	}
	if e.RequestID == "" || !strings.Contains(e.Error, "timed out") {
		t.Fatalf("504 envelope = %+v", e)
	}
	if strings.Contains(w.Body.String(), "too late") {
		t.Fatal("timed-out handler's late write leaked to the client")
	}
}

// TestPanicRecovery asserts a panicking handler yields a JSON 500
// with the request id and does not take the server down.
func TestPanicRecovery(t *testing.T) {
	boom := http.HandlerFunc(func(http.ResponseWriter, *http.Request) { panic("boom") })
	h := withRequestID(withMetrics(newRouteMetrics("panictest"), withTimeout(time.Second, withRecover(boom))))
	w := httptest.NewRecorder()
	r := httptest.NewRequest("GET", "/boom", nil)
	r.Header.Set("X-Request-ID", "caller-chosen-id")
	h.ServeHTTP(w, r)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	var e errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("500 body is not the JSON envelope: %q", w.Body.String())
	}
	if e.RequestID != "caller-chosen-id" {
		t.Fatalf("request id = %q, want the caller-chosen one", e.RequestID)
	}
	if e.Error == "boom" {
		t.Fatal("panic value leaked verbatim to the client")
	}
}

// TestIntrospection covers /healthz and /debug/vars, asserting the
// metrics JSON carries both the web_ and catalog_ families.
func TestIntrospection(t *testing.T) {
	s, _ := newTestServer(t, 0)
	mustOpen(t, s, "alpha", seed)

	w := do(s, "GET", "/healthz", "")
	if w.Code != http.StatusOK || w.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}

	w = do(s, "GET", "/debug/vars", "")
	if w.Code != http.StatusOK {
		t.Fatalf("debug/vars: %d", w.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	for _, key := range []string{
		"web_requests_total", "web_inflight_requests", "web_panics_total", "web_timeouts_total",
		"web_route_open_responses_2xx_total", "web_route_query_latency_seconds",
		"catalog_opens_total", "catalog_open_docs", "catalog_resident_bytes", "catalog_evictions_total",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %s", key)
		}
	}
}
