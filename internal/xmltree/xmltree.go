// Package xmltree provides the ordered XML document model the
// labeling schemes operate on: element and text nodes with document
// order, parsing from XML text, structural statistics matching
// Table 2 of the CDBS paper, and structural updates (subtree insertion
// and deletion).
package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Kind distinguishes node types.
type Kind int

const (
	// Element is an XML element node.
	Element Kind = iota
	// Text is a character-data node.
	Text
	// Attr is an attribute node (Name and Data set). The paper's tree
	// model treats attributes as nodes; parsing them is opt-in via
	// ParseOptions.
	Attr
)

// Node is one node of the ordered tree.
type Node struct {
	Kind     Kind
	Name     string // element name; empty for text nodes
	Data     string // character data; empty for elements
	Parent   *Node
	Children []*Node
}

// NewElement returns a fresh element node.
func NewElement(name string) *Node { return &Node{Kind: Element, Name: name} }

// NewText returns a fresh text node.
func NewText(data string) *Node { return &Node{Kind: Text, Data: data} }

// NewAttr returns a fresh attribute node.
func NewAttr(name, value string) *Node { return &Node{Kind: Attr, Name: name, Data: value} }

// AppendChild adds child as the last child of n and returns child.
func (n *Node) AppendChild(child *Node) *Node {
	child.Parent = n
	n.Children = append(n.Children, child)
	return child
}

// InsertChildAt inserts child before position i (0 ≤ i ≤ len). It
// returns an error on a bad position.
func (n *Node) InsertChildAt(i int, child *Node) error {
	if i < 0 || i > len(n.Children) {
		return fmt.Errorf("xmltree: child position %d out of range [0,%d]", i, len(n.Children))
	}
	child.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = child
	return nil
}

// RemoveChildAt detaches and returns the i-th child.
func (n *Node) RemoveChildAt(i int) (*Node, error) {
	if i < 0 || i >= len(n.Children) {
		return nil, fmt.Errorf("xmltree: child position %d out of range [0,%d)", i, len(n.Children))
	}
	c := n.Children[i]
	n.Children = append(n.Children[:i], n.Children[i+1:]...)
	c.Parent = nil
	return c, nil
}

// ChildIndex returns the position of child among n's children, or -1.
func (n *Node) ChildIndex(child *Node) int {
	for i, c := range n.Children {
		if c == child {
			return i
		}
	}
	return -1
}

// SubtreeSize returns the number of nodes in the subtree rooted at n,
// including n.
func (n *Node) SubtreeSize() int {
	size := 1
	for _, c := range n.Children {
		size += c.SubtreeSize()
	}
	return size
}

// Document is a parsed or constructed XML document.
type Document struct {
	Root *Node
}

// ErrNoRoot reports an input without a document element.
var ErrNoRoot = errors.New("xmltree: document has no root element")

// ParseOptions controls which node kinds Parse materialises.
type ParseOptions struct {
	// IncludeAttributes turns each attribute into an Attr node,
	// ordered before the element's other children.
	IncludeAttributes bool
	// DropText skips character data entirely (element-only trees, the
	// paper's dataset accounting).
	DropText bool
}

// Parse reads an XML document. Whitespace-only character data between
// elements is dropped; attributes are ignored (the labeling
// experiments operate on elements and text, as the paper's node counts
// do). Use ParseWithOptions for attribute nodes.
func Parse(r io.Reader) (*Document, error) {
	return ParseWithOptions(r, ParseOptions{})
}

// ParseWithOptions reads an XML document with explicit node-kind
// selection.
func ParseWithOptions(r io.Reader, opts ParseOptions) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewElement(t.Name.Local)
			if opts.IncludeAttributes {
				for _, a := range t.Attr {
					n.AppendChild(NewAttr(a.Name.Local, a.Value))
				}
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmltree: multiple root elements")
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmltree: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if opts.DropText {
				continue
			}
			s := strings.TrimSpace(string(t))
			if s == "" || len(stack) == 0 {
				continue
			}
			stack[len(stack)-1].AppendChild(NewText(s))
		}
	}
	if root == nil {
		return nil, ErrNoRoot
	}
	return &Document{Root: root}, nil
}

// ParseString parses an XML document from a string.
func ParseString(s string) (*Document, error) { return Parse(strings.NewReader(s)) }

// Nodes returns every node in document (pre)order.
func (d *Document) Nodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	if d.Root != nil {
		walk(d.Root)
	}
	return out
}

// Len returns the number of nodes.
func (d *Document) Len() int {
	if d.Root == nil {
		return 0
	}
	return d.Root.SubtreeSize()
}

// ParentVector returns, for the document-order node list, each node's
// parent index (-1 for the root) — the input format of the Prime
// scheme.
func (d *Document) ParentVector() []int {
	nodes := d.Nodes()
	index := make(map[*Node]int, len(nodes))
	for i, n := range nodes {
		index[n] = i
	}
	out := make([]int, len(nodes))
	for i, n := range nodes {
		if n.Parent == nil {
			out[i] = -1
		} else {
			out[i] = index[n.Parent]
		}
	}
	return out
}

// Stats summarises a document the way Table 2 of the paper does.
type Stats struct {
	Nodes     int
	MaxFanout int
	AvgFanout float64 // mean children count over nodes with children
	MaxDepth  int
	AvgDepth  float64 // mean depth over all nodes; the root has depth 1
}

// Stats computes the document's structural statistics.
func (d *Document) Stats() Stats {
	var s Stats
	if d.Root == nil {
		return s
	}
	var fanSum, fanCount, depthSum int
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		s.Nodes++
		depthSum += depth
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		if len(n.Children) > 0 {
			fanSum += len(n.Children)
			fanCount++
			if len(n.Children) > s.MaxFanout {
				s.MaxFanout = len(n.Children)
			}
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(d.Root, 1)
	if fanCount > 0 {
		s.AvgFanout = float64(fanSum) / float64(fanCount)
	}
	s.AvgDepth = float64(depthSum) / float64(s.Nodes)
	return s
}

// WriteTo serialises the document as XML text. It implements
// io.WriterTo.
func (d *Document) WriteTo(w io.Writer) (int64, error) {
	if d.Root == nil {
		return 0, ErrNoRoot
	}
	cw := &countWriter{w: w}
	err := writeNode(cw, d.Root)
	return cw.n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) WriteString(s string) error {
	n, err := io.WriteString(c.w, s)
	c.n += int64(n)
	return err
}

func writeNode(w *countWriter, n *Node) error {
	switch n.Kind {
	case Text:
		var esc strings.Builder
		if err := xml.EscapeText(&esc, []byte(n.Data)); err != nil {
			return err
		}
		return w.WriteString(esc.String())
	case Attr:
		return fmt.Errorf("xmltree: attribute node %q outside an element", n.Name)
	}
	if err := w.WriteString("<" + n.Name); err != nil {
		return err
	}
	rest := n.Children
	for len(rest) > 0 && rest[0].Kind == Attr {
		a := rest[0]
		var esc strings.Builder
		if err := xml.EscapeText(&esc, []byte(a.Data)); err != nil {
			return err
		}
		if err := w.WriteString(" " + a.Name + `="` + esc.String() + `"`); err != nil {
			return err
		}
		rest = rest[1:]
	}
	if err := w.WriteString(">"); err != nil {
		return err
	}
	for _, c := range rest {
		if c.Kind == Attr {
			return fmt.Errorf("xmltree: attribute %q after non-attribute children of <%s>", c.Name, n.Name)
		}
		if err := writeNode(w, c); err != nil {
			return err
		}
	}
	return w.WriteString("</" + n.Name + ">")
}

// String renders the document as XML text.
func (d *Document) String() string {
	var sb strings.Builder
	cw := &countWriter{w: &sb}
	if d.Root != nil {
		if err := writeNode(cw, d.Root); err != nil {
			return "<!-- " + err.Error() + " -->"
		}
	}
	return sb.String()
}
