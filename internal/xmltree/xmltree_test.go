package xmltree

import (
	"strings"
	"testing"
)

const sampleXML = `<book>
  <title>XML Updates</title>
  <author>Li</author>
  <author>Ling</author>
  <section>
    <title>Intro</title>
    <para>Dynamic labeling matters.</para>
  </section>
</book>`

func parseSample(t *testing.T) *Document {
	t.Helper()
	d, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseShape(t *testing.T) {
	d := parseSample(t)
	if d.Root.Name != "book" {
		t.Fatalf("root = %q", d.Root.Name)
	}
	if got := len(d.Root.Children); got != 4 {
		t.Fatalf("root has %d children, want 4", got)
	}
	title := d.Root.Children[0]
	if title.Name != "title" || len(title.Children) != 1 || title.Children[0].Kind != Text {
		t.Errorf("title subtree wrong: %+v", title)
	}
	if title.Children[0].Data != "XML Updates" {
		t.Errorf("title text = %q", title.Children[0].Data)
	}
	// 1 book + title(+text) + 2×author(+text) + section + title(+text) + para(+text) = 12
	if d.Len() != 12 {
		t.Errorf("Len = %d, want 12", d.Len())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString(""); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ParseString("<a><b></a>"); err == nil {
		t.Error("mismatched tags accepted")
	}
	if _, err := ParseString("<a/><b/>"); err == nil {
		t.Error("two roots accepted")
	}
}

func TestNodesDocumentOrder(t *testing.T) {
	d := parseSample(t)
	nodes := d.Nodes()
	if len(nodes) != d.Len() {
		t.Fatalf("Nodes() returned %d, Len %d", len(nodes), d.Len())
	}
	if nodes[0] != d.Root {
		t.Error("first node is not the root")
	}
	var names []string
	for _, n := range nodes {
		if n.Kind == Element {
			names = append(names, n.Name)
		}
	}
	want := "book title author author section title para"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("element order = %q, want %q", got, want)
	}
}

func TestParentVector(t *testing.T) {
	d := parseSample(t)
	pv := d.ParentVector()
	if pv[0] != -1 {
		t.Errorf("root parent = %d", pv[0])
	}
	nodes := d.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[pv[i]] != nodes[i].Parent {
			t.Errorf("parent vector wrong at %d", i)
		}
		if pv[i] >= i {
			t.Errorf("parent %d not before child %d", pv[i], i)
		}
	}
}

func TestStats(t *testing.T) {
	d := parseSample(t)
	s := d.Stats()
	if s.Nodes != 12 {
		t.Errorf("Nodes = %d", s.Nodes)
	}
	if s.MaxFanout != 4 {
		t.Errorf("MaxFanout = %d, want 4", s.MaxFanout)
	}
	if s.MaxDepth != 4 { // book > section > para > text
		t.Errorf("MaxDepth = %d, want 4", s.MaxDepth)
	}
	if s.AvgDepth <= 1 || s.AvgDepth >= float64(s.MaxDepth) {
		t.Errorf("AvgDepth = %f", s.AvgDepth)
	}
	if s.AvgFanout <= 0 {
		t.Errorf("AvgFanout = %f", s.AvgFanout)
	}
}

func TestInsertRemoveChild(t *testing.T) {
	d := parseSample(t)
	note := NewElement("note")
	if err := d.Root.InsertChildAt(1, note); err != nil {
		t.Fatal(err)
	}
	if d.Root.Children[1] != note || note.Parent != d.Root {
		t.Error("InsertChildAt misplaced the node")
	}
	if d.Root.ChildIndex(note) != 1 {
		t.Error("ChildIndex wrong")
	}
	removed, err := d.Root.RemoveChildAt(1)
	if err != nil || removed != note || note.Parent != nil {
		t.Errorf("RemoveChildAt = %v, %v", removed, err)
	}
	if err := d.Root.InsertChildAt(-1, note); err == nil {
		t.Error("negative position accepted")
	}
	if _, err := d.Root.RemoveChildAt(99); err == nil {
		t.Error("out-of-range removal accepted")
	}
	if d.Root.ChildIndex(note) != -1 {
		t.Error("detached child still found")
	}
}

func TestRoundTrip(t *testing.T) {
	d := parseSample(t)
	text := d.String()
	d2, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Errorf("round trip %d nodes, want %d", d2.Len(), d.Len())
	}
	if d2.String() != text {
		t.Error("second serialisation differs")
	}
}

func TestWriteToEscapes(t *testing.T) {
	doc := &Document{Root: NewElement("a")}
	doc.Root.AppendChild(NewText("x < y & z"))
	var sb strings.Builder
	if _, err := doc.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "&lt;") || !strings.Contains(sb.String(), "&amp;") {
		t.Errorf("unescaped output: %q", sb.String())
	}
	back, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Root.Children[0].Data != "x < y & z" {
		t.Errorf("escape round trip = %q", back.Root.Children[0].Data)
	}
}

func TestSubtreeSize(t *testing.T) {
	d := parseSample(t)
	if got := d.Root.Children[3].SubtreeSize(); got != 5 { // section subtree
		t.Errorf("section subtree = %d, want 5", got)
	}
}

func TestEmptyDocument(t *testing.T) {
	var d Document
	if d.Len() != 0 || len(d.Nodes()) != 0 {
		t.Error("empty document not empty")
	}
	if _, err := d.WriteTo(&strings.Builder{}); err == nil {
		t.Error("WriteTo on empty document succeeded")
	}
	s := d.Stats()
	if s.Nodes != 0 {
		t.Error("stats on empty document")
	}
}

func TestParseWithAttributes(t *testing.T) {
	in := `<book id="b1" lang="en"><title key="t">X</title></book>`
	plain, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 3 { // book, title, text
		t.Errorf("plain Len = %d", plain.Len())
	}
	withAttrs, err := ParseWithOptions(strings.NewReader(in), ParseOptions{IncludeAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if withAttrs.Len() != 6 { // + id, lang, key
		t.Fatalf("attr Len = %d", withAttrs.Len())
	}
	// Attributes come first among children, in document order.
	if a := withAttrs.Root.Children[0]; a.Kind != Attr || a.Name != "id" || a.Data != "b1" {
		t.Errorf("first child = %+v", a)
	}
	if a := withAttrs.Root.Children[1]; a.Kind != Attr || a.Name != "lang" {
		t.Errorf("second child = %+v", a)
	}
	// Round trip preserves attributes.
	text := withAttrs.String()
	if !strings.Contains(text, `id="b1"`) || !strings.Contains(text, `lang="en"`) {
		t.Errorf("serialisation lost attributes: %s", text)
	}
	back, err := ParseWithOptions(strings.NewReader(text), ParseOptions{IncludeAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != withAttrs.Len() {
		t.Errorf("round trip Len = %d", back.Len())
	}
	// Attribute values get escaped.
	doc := &Document{Root: NewElement("a")}
	doc.Root.AppendChild(NewAttr("v", `x<&"y`))
	reparsed, err := ParseWithOptions(strings.NewReader(doc.String()), ParseOptions{IncludeAttributes: true})
	if err != nil {
		t.Fatalf("escaped attr round trip: %v (%s)", err, doc.String())
	}
	if got := reparsed.Root.Children[0].Data; got != `x<&"y` {
		t.Errorf("attr value = %q", got)
	}
}

func TestParseDropText(t *testing.T) {
	doc, err := ParseWithOptions(strings.NewReader("<a><b>hello</b>world</a>"), ParseOptions{DropText: true})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Len() != 2 {
		t.Errorf("Len = %d, want 2 (elements only)", doc.Len())
	}
}

func TestAttrNodeSerializationErrors(t *testing.T) {
	// An attribute after non-attribute children is malformed.
	doc := &Document{Root: NewElement("a")}
	doc.Root.AppendChild(NewText("t"))
	doc.Root.AppendChild(NewAttr("x", "1"))
	if _, err := doc.WriteTo(&strings.Builder{}); err == nil {
		t.Error("attribute after text accepted")
	}
	// A bare attribute root is malformed.
	bad := &Document{Root: NewAttr("x", "1")}
	if _, err := bad.WriteTo(&strings.Builder{}); err == nil {
		t.Error("attribute root accepted")
	}
}

func TestLabelingOverAttributeNodes(t *testing.T) {
	// Attribute nodes are ordinary tree nodes for the labeling layer,
	// as the paper's model prescribes.
	doc, err := ParseWithOptions(strings.NewReader(`<r a="1" b="2"><c d="3"/></r>`), ParseOptions{IncludeAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Len() != 5 {
		t.Fatalf("Len = %d", doc.Len())
	}
	pv := doc.ParentVector()
	if pv[1] != 0 || pv[2] != 0 || pv[4] != 3 {
		t.Errorf("parent vector = %v", pv)
	}
}
