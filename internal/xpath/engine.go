package xpath

import (
	"fmt"
	"sort"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// Engine evaluates queries over one labeled document. Joins walk
// document-ordered node lists and decide every structural relationship
// through the labeling's predicates, so the per-scheme label costs are
// what the evaluation measures. The element-name index and child lists
// are ordinary index structures, identical for every scheme.
//
// An Engine holds no mutable state of its own: Eval only reads the
// labeling and index views it was built over. As long as those stay
// unmodified — e.g. inside one dyndoc snapshot, whose state is frozen
// at publish time — one Engine may be shared and evaluated from any
// number of goroutines concurrently with no locking.
type Engine struct {
	lab   scheme.Labeling
	names []string
	idx   Index
}

// Index is the element-name index view an Engine evaluates over: the
// per-name id lists and the all-elements list, each in document
// order. The in-memory maps NewEngine builds satisfy it, and so does
// any storage backend (internal/store) — the engine never cares where
// the lists live, only that they are document-ordered and stable for
// the duration of a query.
type Index interface {
	// IDs returns the ids of elements with the given name in document
	// order. The slice is borrowed: read-only, valid until the index
	// is next mutated.
	IDs(name string) []int
	// Elems returns all element ids in document order, under the same
	// borrowing rule.
	Elems() []int
}

// sliceIndex is the engine's built-in Index over plain slices.
type sliceIndex struct {
	byName map[string][]int
	elems  []int
}

func (s sliceIndex) IDs(name string) []int { return s.byName[name] }
func (s sliceIndex) Elems() []int          { return s.elems }

// NewEngine indexes doc (whose labeling must have been built from the
// same document, so node ids coincide with document order).
func NewEngine(doc *xmltree.Document, lab scheme.Labeling) (*Engine, error) {
	nodes := doc.Nodes()
	if len(nodes) != lab.Len() {
		return nil, fmt.Errorf("xpath: document has %d nodes, labeling %d", len(nodes), lab.Len())
	}
	idx := sliceIndex{byName: make(map[string][]int)}
	e := &Engine{
		lab:   lab,
		names: make([]string, len(nodes)),
	}
	for i, n := range nodes {
		if n.Kind != xmltree.Element {
			continue
		}
		e.names[i] = n.Name
		idx.byName[n.Name] = append(idx.byName[n.Name], i)
		idx.elems = append(idx.elems, i)
	}
	e.idx = idx
	return e, nil
}

// NewEngineIndexed builds an engine over externally maintained index
// structures (names per id, per-name id lists and the all-elements
// list, each in document order). The slices are shared, not copied,
// and must not be mutated during a query.
func NewEngineIndexed(lab scheme.Labeling, names []string, byName map[string][]int, elems []int) *Engine {
	return &Engine{lab: lab, names: names, idx: sliceIndex{byName: byName, elems: elems}}
}

// NewEngineWithIndex builds an engine over any Index implementation —
// the entry point the dyndoc package uses so one incrementally
// updated storage backend (slice or paged) serves every query.
func NewEngineWithIndex(lab scheme.Labeling, names []string, idx Index) *Engine {
	return &Engine{lab: lab, names: names, idx: idx}
}

// Eval runs an absolute query and returns matching node ids in
// document order. The returned slice is always the caller's to keep:
// when evaluation ends on a borrowed index list (see eval) a copy is
// made here, so callers may mutate the result freely.
func (e *Engine) Eval(q *Query) ([]int, error) {
	if q.Relative {
		return nil, fmt.Errorf("xpath: Eval needs an absolute query, got %q", q)
	}
	out, borrowed, err := e.eval(q, nil, true)
	if err != nil {
		return nil, err
	}
	if borrowed {
		out = append([]int(nil), out...)
	}
	return out, nil
}

// eval runs the steps from the given context; fromRoot selects the
// virtual document node as initial context.
//
// Copy-on-write guard: a first-step descendant axis borrows the
// per-name index slice directly instead of copying it — no predicate
// or later step ever mutates a step's input in place (joins and
// predicate filters always build fresh output slices), so sharing is
// safe inside evaluation. The returned borrowed flag reports that the
// final result still aliases the index; Eval copies exactly then, and
// internal consumers (exists) only read, so they skip the copy.
func (e *Engine) eval(q *Query, ctx []int, fromRoot bool) ([]int, bool, error) {
	borrowed := false
	for si, step := range q.Steps {
		var out []int
		first := fromRoot && si == 0
		borrowed = false
		switch step.Axis {
		case Child:
			if first {
				// Child of the document node: the root element.
				if root := e.rootElement(); root >= 0 && e.nameMatches(step.Name, root) {
					out = []int{root}
				}
			} else {
				out = e.joinDown(ctx, e.candidates(step.Name), false)
			}
		case Descendant:
			if first {
				// Borrowed, not copied: the candidate list is exactly
				// the step result. See the guard note above.
				out = e.candidates(step.Name)
				borrowed = true
			} else {
				out = e.joinDown(ctx, e.candidates(step.Name), true)
			}
		case PrecedingSibling, FollowingSibling:
			if first {
				return nil, false, fmt.Errorf("xpath: %s from document root", step.Axis)
			}
			out = e.siblings(ctx, step.Name, step.Axis == PrecedingSibling)
		case Following:
			if first {
				return nil, false, fmt.Errorf("xpath: %s from document root", step.Axis)
			}
			out = e.following(ctx, step.Name)
		case Parent:
			if first {
				return nil, false, fmt.Errorf("xpath: %s from document root", step.Axis)
			}
			out = e.parents(ctx, step.Name)
		case Ancestor:
			if first {
				return nil, false, fmt.Errorf("xpath: %s from document root", step.Axis)
			}
			out = e.ancestors(ctx, step.Name)
		}
		for _, pred := range step.Preds {
			var err error
			out, err = e.applyPred(out, step, pred)
			if err != nil {
				return nil, false, err
			}
			// Predicate filters build fresh slices, so the borrow (if
			// any) ends here.
			borrowed = false
		}
		ctx = out
	}
	return ctx, borrowed, nil
}

// rootElement returns the id of the document element.
func (e *Engine) rootElement() int {
	tr := e.lab.Tree()
	for i, p := range tr.Parents {
		if p == -1 {
			return i
		}
	}
	return -1
}

// candidates returns the doc-ordered element ids matching a name test.
func (e *Engine) candidates(name string) []int {
	if name == "*" {
		return e.idx.Elems()
	}
	return e.idx.IDs(name)
}

func (e *Engine) nameMatches(test string, id int) bool {
	return test == "*" || e.names[id] == test
}

// joinDown is a stack-based structural join: it returns the candidates
// that are children (or, with anc, descendants) of some context node.
// Both inputs are in document order; every structural decision is a
// labeling predicate call.
func (e *Engine) joinDown(ctx, cand []int, anc bool) []int {
	var out []int
	var stack []int
	i := 0
	for _, d := range cand {
		// Push context nodes that start before d, maintaining the
		// nested-chain invariant.
		for i < len(ctx) && e.lab.Before(ctx[i], d) {
			for len(stack) > 0 && !e.lab.IsAncestor(stack[len(stack)-1], ctx[i]) {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, ctx[i])
			i++
		}
		// Pop context nodes whose subtree ended before d.
		for len(stack) > 0 && !e.lab.IsAncestor(stack[len(stack)-1], d) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			continue
		}
		if anc || e.lab.IsParent(stack[len(stack)-1], d) {
			out = append(out, d)
		}
	}
	return out
}

// siblings returns, deduplicated and in document order, the elements
// matching the name test that are preceding (or following) siblings of
// a context node.
func (e *Engine) siblings(ctx []int, name string, preceding bool) []int {
	tr := e.lab.Tree()
	seen := make(map[int]bool)
	var out []int
	for _, v := range ctx {
		p := tr.Parents[v]
		if p == -1 {
			continue
		}
		for _, u := range tr.Children[p] {
			if u == v {
				continue
			}
			if e.names[u] == "" || !e.nameMatches(name, u) {
				continue
			}
			// The sibling and order checks are the labeling's work.
			if !e.lab.IsSibling(u, v) || seen[u] {
				continue
			}
			if before := e.lab.Before(u, v); before == preceding {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	sort.Ints(out)
	return out
}

// parents returns the deduplicated parents of the context nodes that
// match the name test, confirmed through the labeling's parent
// predicate.
func (e *Engine) parents(ctx []int, name string) []int {
	tr := e.lab.Tree()
	seen := make(map[int]bool)
	var out []int
	for _, v := range ctx {
		p := tr.Parents[v]
		if p == -1 || seen[p] || e.names[p] == "" || !e.nameMatches(name, p) {
			continue
		}
		if e.lab.IsParent(p, v) {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// ancestors returns the deduplicated proper ancestors of the context
// nodes that match the name test, decided by the labels.
func (e *Engine) ancestors(ctx []int, name string) []int {
	cand := e.candidates(name)
	var out []int
	for _, u := range cand {
		for _, v := range ctx {
			if e.lab.IsAncestor(u, v) {
				out = append(out, u)
				break
			}
		}
	}
	return out
}

// following returns the elements matching the name test that are after
// every context node's subtree (the XPath following axis), for at
// least one context node.
func (e *Engine) following(ctx []int, name string) []int {
	cand := e.candidates(name)
	var out []int
	for _, w := range cand {
		for _, v := range ctx {
			if e.lab.Before(v, w) && !e.lab.IsAncestor(v, w) {
				out = append(out, w)
				break
			}
		}
	}
	return out
}

// applyPred filters a step result by one predicate.
func (e *Engine) applyPred(in []int, step Step, pred Pred) ([]int, error) {
	if pred.Position > 0 {
		return e.filterPosition(in, step, pred.Position), nil
	}
	var out []int
	for _, v := range in {
		ok, err := e.exists(v, pred.Path)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// filterPosition keeps nodes that are the n-th same-name child of
// their parent, XPath's meaning for name[n] on the child and
// descendant axes.
func (e *Engine) filterPosition(in []int, step Step, n int) []int {
	tr := e.lab.Tree()
	var out []int
	for _, v := range in {
		p := tr.Parents[v]
		if p == -1 {
			if n == 1 {
				out = append(out, v)
			}
			continue
		}
		pos := 0
		for _, u := range tr.Children[p] {
			if e.names[u] != "" && e.nameMatches(step.Name, u) {
				pos++
			}
			if u == v {
				break
			}
		}
		if pos == n {
			out = append(out, v)
		}
	}
	return out
}

// exists evaluates a relative path predicate under node v. It only
// inspects the result length, so a borrowed final slice needs no copy.
func (e *Engine) exists(v int, q *Query) (bool, error) {
	res, _, err := e.eval(q, []int{v}, false)
	if err != nil {
		return false, err
	}
	return len(res) > 0, nil
}

// Count evaluates a query and returns the number of matches — the
// "nodes retrieved" column of Table 3. It reads only the result
// length, so a borrowed final slice is counted without the defensive
// copy Eval would make.
func (e *Engine) Count(q *Query) (int, error) {
	if q.Relative {
		return 0, fmt.Errorf("xpath: Count needs an absolute query, got %q", q)
	}
	res, _, err := e.eval(q, nil, true)
	return len(res), err
}

// ---------------------------------------------------------------------------
// Planner primitives.
//
// The exported methods below are the raw building blocks the
// xpath/plan package composes plans from: borrowed candidate lists,
// structural joins in both directions over arbitrary (contiguous)
// list slices, and predicate filtering. They are plain reads of the
// engine's immutable views, so — like Eval — they are safe to call
// from any number of goroutines concurrently.

// Candidates returns the document-ordered element ids matching a name
// test. The slice is BORROWED from the engine's index: callers must
// treat it as read-only and may sub-slice it (for partitioned joins)
// but never mutate or append to it in place.
func (e *Engine) Candidates(name string) []int { return e.candidates(name) }

// CandidateCount returns len(Candidates(name)) without touching the
// slice — the per-name selectivity statistic the planner orders
// evaluation around.
func (e *Engine) CandidateCount(name string) int { return len(e.candidates(name)) }

// Root returns the id of the document element, or -1 on an empty
// document.
func (e *Engine) Root() int { return e.rootElement() }

// NameOf returns the element name recorded for id ("" for text
// nodes).
func (e *Engine) NameOf(id int) string { return e.names[id] }

// ParentOf returns the parent id of a node (-1 for the root), read
// from the labeling's structural mirror. The planner's pathcheck
// strategy walks these pointers to verify an anchor candidate's
// ancestor chain without materializing intermediate join results.
func (e *Engine) ParentOf(id int) int { return e.lab.Tree().Parents[id] }

// NameMatches reports whether node id satisfies a name test.
func (e *Engine) NameMatches(test string, id int) bool { return e.nameMatches(test, id) }

// JoinDown is the exported structural join: it returns the candidates
// that are children (or, with desc, descendants) of some context
// node. Both inputs must be in document order; cand may be any
// contiguous slice of a document-ordered list, which is what makes
// the join partitionable — JoinDown(ctx, cand[a:b]) depends only on
// ctx and cand[a:b], so disjoint partitions evaluated concurrently
// concatenate into exactly JoinDown(ctx, cand).
func (e *Engine) JoinDown(ctx, cand []int, desc bool) []int {
	return e.joinDown(ctx, cand, desc)
}

// JoinUp is the reverse structural semi-join: it returns, in document
// order, the context nodes with at least one candidate child (or,
// with desc, descendant). It is the upward direction of the planner's
// anchored evaluation — pruning the lists of earlier steps by the
// survivors of a more selective later step.
func (e *Engine) JoinUp(ctx, cand []int, desc bool) []int {
	marked := make([]bool, len(ctx))
	e.JoinUpMarks(ctx, cand, desc, marked)
	var out []int
	for i, m := range marked {
		if m {
			out = append(out, ctx[i])
		}
	}
	return out
}

// JoinUpMarks is JoinUp writing into a caller-owned mark vector
// (marked[i] is set when ctx[i] has a qualifying candidate below it;
// existing marks are preserved). Partitioned parallel joins give each
// worker a disjoint candidate slice and a private mark vector, then
// OR the vectors — document order makes that union exact.
func (e *Engine) JoinUpMarks(ctx, cand []int, desc bool, marked []bool) {
	var stack []int // indices into ctx, innermost open context last
	i := 0
	for _, d := range cand {
		// Open every context node that starts before d, keeping the
		// stack a nested ancestor chain (same invariant as joinDown).
		for i < len(ctx) && e.lab.Before(ctx[i], d) {
			for len(stack) > 0 && !e.lab.IsAncestor(ctx[stack[len(stack)-1]], ctx[i]) {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, i)
			i++
		}
		// Close context nodes whose subtree ended before d.
		for len(stack) > 0 && !e.lab.IsAncestor(ctx[stack[len(stack)-1]], d) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			continue
		}
		if desc {
			// Every open context node is an ancestor of d. An entry
			// already marked had everything beneath it marked when it
			// was, so the walk can stop there — total marking work is
			// amortized O(len(ctx)).
			for j := len(stack) - 1; j >= 0 && !marked[stack[j]]; j-- {
				marked[stack[j]] = true
			}
		} else if e.lab.IsParent(ctx[stack[len(stack)-1]], d) {
			// Only the innermost open context node can be the parent.
			marked[stack[len(stack)-1]] = true
		}
	}
}

// FilterPreds applies every predicate of step to the given node list.
// With no predicates the input slice is returned as-is (so a borrowed
// list stays borrowed); otherwise each predicate builds a fresh
// slice. Predicates are node-local (a positional
// predicate counts same-name siblings, a path predicate evaluates a
// relative query under the node), so filtering commutes with the
// structural joins — the algebraic fact the planner's reordering
// relies on.
func (e *Engine) FilterPreds(in []int, step Step) ([]int, error) {
	out := in
	for _, pred := range step.Preds {
		var err error
		out, err = e.applyPred(out, step, pred)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Corpus evaluates queries over a set of files, the way the paper runs
// Q1–Q6 over the scaled D5 collection.
type Corpus []*Engine

// Count sums the match counts over all files.
func (c Corpus) Count(q *Query) (int, error) {
	total := 0
	for _, e := range c {
		n, err := e.Count(q)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}
