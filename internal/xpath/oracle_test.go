package xpath

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/containment"
	"repro/internal/keys"
	"repro/internal/prefix"
	"repro/internal/xmltree"
)

// oracle is an independent, structure-walking evaluator of the same
// XPath fragment. It knows nothing about labels: every axis is
// computed from the parsed tree directly, which makes it a trustworthy
// reference for the label-driven engine.
type oracle struct {
	nodes  []*xmltree.Node
	index  map[*xmltree.Node]int
	docPos map[*xmltree.Node]int
}

func newOracle(doc *xmltree.Document) *oracle {
	o := &oracle{
		index:  map[*xmltree.Node]int{},
		docPos: map[*xmltree.Node]int{},
	}
	o.nodes = doc.Nodes()
	for i, n := range o.nodes {
		o.index[n] = i
		o.docPos[n] = i
	}
	return o
}

func (o *oracle) eval(q *Query, ctx []*xmltree.Node, fromRoot bool) []*xmltree.Node {
	for si, step := range q.Steps {
		var out []*xmltree.Node
		first := fromRoot && si == 0
		switch step.Axis {
		case Child:
			if first {
				root := o.nodes[0]
				if o.matches(step.Name, root) {
					out = append(out, root)
				}
			} else {
				for _, c := range ctx {
					for _, k := range c.Children {
						if o.matches(step.Name, k) {
							out = append(out, k)
						}
					}
				}
				o.sortDoc(out)
			}
		case Descendant:
			var from []*xmltree.Node
			if first {
				from = []*xmltree.Node{o.nodes[0].Parent} // nil sentinel unused
				out = o.descendants(o.nodes[0], true, step.Name)
			} else {
				seen := map[*xmltree.Node]bool{}
				for _, c := range ctx {
					for _, d := range o.descendants(c, false, step.Name) {
						if !seen[d] {
							seen[d] = true
							out = append(out, d)
						}
					}
				}
				o.sortDoc(out)
			}
			_ = from
		case PrecedingSibling, FollowingSibling:
			seen := map[*xmltree.Node]bool{}
			for _, c := range ctx {
				if c.Parent == nil {
					continue
				}
				beforeC := true
				for _, sib := range c.Parent.Children {
					if sib == c {
						beforeC = false
						continue
					}
					want := beforeC == (step.Axis == PrecedingSibling)
					if want && o.matches(step.Name, sib) && !seen[sib] {
						seen[sib] = true
						out = append(out, sib)
					}
				}
			}
			o.sortDoc(out)
		case Parent:
			seen := map[*xmltree.Node]bool{}
			for _, c := range ctx {
				p := c.Parent
				if p != nil && o.matches(step.Name, p) && !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
			o.sortDoc(out)
		case Ancestor:
			seen := map[*xmltree.Node]bool{}
			for _, c := range ctx {
				for p := c.Parent; p != nil; p = p.Parent {
					if o.matches(step.Name, p) && !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
			o.sortDoc(out)
		case Following:
			seen := map[*xmltree.Node]bool{}
			for _, c := range ctx {
				end := o.subtreeEnd(c)
				for i := end + 1; i < len(o.nodes); i++ {
					n := o.nodes[i]
					if o.matches(step.Name, n) && !seen[n] {
						seen[n] = true
						out = append(out, n)
					}
				}
			}
			o.sortDoc(out)
		}
		for _, pred := range step.Preds {
			out = o.applyPred(out, step, pred)
		}
		ctx = out
	}
	return ctx
}

// matches implements the name test on element nodes only.
func (o *oracle) matches(test string, n *xmltree.Node) bool {
	if n == nil || n.Kind != xmltree.Element {
		return false
	}
	return test == "*" || n.Name == test
}

// descendants collects matching descendants of n (self excluded unless
// includeSelf).
func (o *oracle) descendants(n *xmltree.Node, includeSelf bool, name string) []*xmltree.Node {
	var out []*xmltree.Node
	var walk func(m *xmltree.Node, self bool)
	walk = func(m *xmltree.Node, self bool) {
		if (!self || includeSelf) && o.matches(name, m) {
			out = append(out, m)
		}
		for _, c := range m.Children {
			walk(c, false)
		}
	}
	walk(n, true)
	return out
}

// subtreeEnd returns the doc index of the last node in n's subtree.
func (o *oracle) subtreeEnd(n *xmltree.Node) int {
	last := n
	for len(last.Children) > 0 {
		last = last.Children[len(last.Children)-1]
	}
	return o.docPos[last]
}

func (o *oracle) sortDoc(ns []*xmltree.Node) {
	sort.Slice(ns, func(i, j int) bool { return o.docPos[ns[i]] < o.docPos[ns[j]] })
}

func (o *oracle) applyPred(in []*xmltree.Node, step Step, pred Pred) []*xmltree.Node {
	var out []*xmltree.Node
	for _, n := range in {
		if pred.Position > 0 {
			if o.position(step.Name, n) == pred.Position {
				out = append(out, n)
			}
			continue
		}
		if len(o.eval(pred.Path, []*xmltree.Node{n}, false)) > 0 {
			out = append(out, n)
		}
	}
	return out
}

// position returns n's 1-based position among same-test siblings.
func (o *oracle) position(test string, n *xmltree.Node) int {
	if n.Parent == nil {
		return 1
	}
	pos := 0
	for _, sib := range n.Parent.Children {
		if o.matches(test, sib) {
			pos++
		}
		if sib == n {
			break
		}
	}
	return pos
}

func (o *oracle) ids(ns []*xmltree.Node) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = o.index[n]
	}
	return out
}

// randomNamedDoc builds a random document over a small vocabulary so
// that queries hit.
func randomNamedDoc(gen *rand.Rand, n int) *xmltree.Document {
	names := []string{"a", "b", "c", "d"}
	root := xmltree.NewElement("root")
	elems := []*xmltree.Node{root}
	for len(elems) < n {
		p := elems[gen.Intn(len(elems))]
		child := xmltree.NewElement(names[gen.Intn(len(names))])
		p.AppendChild(child)
		elems = append(elems, child)
	}
	return &xmltree.Document{Root: root}
}

// randomQuery builds a random query in the supported fragment.
func randomQuery(gen *rand.Rand) string {
	names := []string{"a", "b", "c", "d", "*"}
	steps := 1 + gen.Intn(3)
	q := ""
	for i := 0; i < steps; i++ {
		sep := "/"
		if gen.Intn(3) == 0 {
			sep = "//"
		}
		axis := ""
		if i > 0 && sep == "/" {
			switch gen.Intn(12) {
			case 0:
				axis = "preceding-sibling::"
			case 1:
				axis = "following::"
			case 2:
				axis = "following-sibling::"
			case 3:
				axis = "parent::"
			case 4:
				axis = "ancestor::"
			}
		}
		name := names[gen.Intn(len(names))]
		pred := ""
		switch gen.Intn(6) {
		case 0:
			pred = fmt.Sprintf("[%d]", 1+gen.Intn(3))
		case 1:
			pred = fmt.Sprintf("[./%s]", names[gen.Intn(4)])
		case 2:
			pred = fmt.Sprintf("[.//%s]", names[gen.Intn(4)])
		}
		q += sep + axis + name + pred
	}
	return q
}

// TestEngineMatchesOracleQuick fuzzes random documents and queries,
// comparing the label-driven engine (under two scheme families)
// against the structural oracle.
func TestEngineMatchesOracleQuick(t *testing.T) {
	gen := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		doc := randomNamedDoc(gen, 20+gen.Intn(60))
		o := newOracle(doc)
		labC, err := containment.New(keys.VCDBS(), doc)
		if err != nil {
			t.Fatal(err)
		}
		engC, err := NewEngine(doc, labC)
		if err != nil {
			t.Fatal(err)
		}
		labP, err := prefix.New(prefix.QEDCodec(), doc)
		if err != nil {
			t.Fatal(err)
		}
		engP, err := NewEngine(doc, labP)
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 25; qi++ {
			qs := randomQuery(gen)
			q, err := Parse(qs)
			if err != nil {
				t.Fatalf("generated bad query %q: %v", qs, err)
			}
			want := o.ids(o.eval(q, nil, true))
			for name, eng := range map[string]*Engine{"containment": engC, "prefix": engP} {
				got, err := eng.Eval(q)
				if err != nil {
					t.Fatalf("%s: %q: %v", name, qs, err)
				}
				if !reflect.DeepEqual(normalize(got), normalize(want)) {
					t.Fatalf("trial %d %s: %q: engine %v, oracle %v\ndoc: %s",
						trial, name, qs, got, want, doc)
				}
			}
		}
	}
}

// normalize maps nil to empty for comparison.
func normalize(ids []int) []int {
	if len(ids) == 0 {
		return []int{}
	}
	return ids
}

// TestOracleSanity pins the oracle itself against the hand-computed
// answers of the main test document, so the fuzz comparison cannot
// pass vacuously.
func TestOracleSanity(t *testing.T) {
	doc, err := xmltree.ParseString(testDoc)
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(doc)
	wants := map[string]int{
		"/play/act":                   3,
		"//act/scene/speech":          4,
		"/play/*//line":               7,
		"//act[2]/following::speaker": 1,
		"/play/personae/persona[3]/preceding-sibling::*":       3,
		"/play//personae[./title]/pgroup[.//grpdescr]/persona": 2,
	}
	for qs, want := range wants {
		got := len(o.eval(MustParse(qs), nil, true))
		if got != want {
			t.Errorf("oracle Count(%s) = %d, want %d", qs, got, want)
		}
	}
}
