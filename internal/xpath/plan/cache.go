package plan

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/xpath"
)

// Cache metrics: compiled-plan reuse, materialized-result reuse keyed
// by snapshot generation, and evictions when the result cache
// overflows its bounds.
var (
	mPlanHits     = metrics.Default.Counter("xpath_plan_cache_hits_total")
	mPlanMisses   = metrics.Default.Counter("xpath_plan_cache_misses_total")
	mResultHits   = metrics.Default.Counter("xpath_result_cache_hits_total")
	mResultMisses = metrics.Default.Counter("xpath_result_cache_misses_total")
	mResultEvict  = metrics.Default.Counter("xpath_result_cache_evictions_total")
	mResultRefuse = metrics.Default.Counter("xpath_result_cache_oversize_refused_total")
)

// Cache bound defaults: entries and total cached ids across all
// entries (the ids bound is what actually limits memory).
const (
	defaultMaxResults   = 256
	defaultMaxCachedIDs = 1 << 22
)

// resultEntry is one materialized query result, valid only at the
// generation it was computed against.
type resultEntry struct {
	gen uint64
	ids []int
}

// Cache holds compiled plans keyed by query text and materialized
// results keyed by (query text, snapshot generation). Plans stay
// valid across snapshots — strategy drift is a performance question,
// never a correctness one — so they are cached unconditionally.
// Results are only valid at the exact generation they were computed
// against: a lookup compares the caller's generation (one atomic load
// at the call site, dyndoc.Concurrent.Generation) with the entry's,
// and anything else is a miss. There is no other invalidation
// protocol; writers never touch the cache.
type Cache struct {
	maxResults int
	maxIDs     int

	mu      sync.RWMutex
	plans   map[string]*Plan        // vet:guardedby mu
	results map[string]*resultEntry // vet:guardedby mu
	nIDs    int                     // vet:guardedby mu // total ids across results
}

// NewCache returns a cache with the default bounds.
func NewCache() *Cache { return NewCacheBounds(defaultMaxResults, defaultMaxCachedIDs) }

// NewCacheBounds returns a cache bounded to maxResults entries and
// maxIDs total cached node ids.
func NewCacheBounds(maxResults, maxIDs int) *Cache {
	return &Cache{
		maxResults: maxResults,
		maxIDs:     maxIDs,
		plans:      make(map[string]*Plan),
		results:    make(map[string]*resultEntry),
	}
}

// planFor returns the cached plan for text, compiling against e on a
// miss. Concurrent compilations of the same query may race; both
// produce correct plans and the last store wins.
func (c *Cache) planFor(e *xpath.Engine, q *xpath.Query, text string) *Plan {
	c.mu.RLock()
	p := c.plans[text]
	c.mu.RUnlock()
	if p != nil {
		mPlanHits.Inc()
		return p
	}
	mPlanMisses.Inc()
	p = For(e, q)
	c.mu.Lock()
	c.plans[text] = p
	c.mu.Unlock()
	return p
}

// lookupResult returns the cached ids for (text, gen), or nil.
func (c *Cache) lookupResult(text string, gen uint64) ([]int, bool) {
	c.mu.RLock()
	ent := c.results[text]
	c.mu.RUnlock()
	if ent == nil || ent.gen != gen {
		return nil, false
	}
	return ent.ids, true
}

// storeResult caches ids for (text, gen) and evicts — stale
// generations first, then arbitrary entries — until the bounds hold.
// A result the bounds could never admit (more ids than maxIDs, or a
// zero-entry cache) is refused outright: storing it would pin the
// cache over its memory bound forever, since eviction never removes
// the entry just stored, and evicting every other entry first would
// empty the cache for a result it still cannot keep. The stale entry
// the oversize result replaces is still dropped — it is wrong at this
// generation either way.
func (c *Cache) storeResult(text string, gen uint64, ids []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.results[text]; old != nil {
		c.nIDs -= len(old.ids)
		delete(c.results, text)
	}
	if len(ids) > c.maxIDs || c.maxResults < 1 {
		mResultRefuse.Inc()
		return
	}
	c.results[text] = &resultEntry{gen: gen, ids: ids}
	c.nIDs += len(ids)
	if len(c.results) <= c.maxResults && c.nIDs <= c.maxIDs {
		return
	}
	for key, ent := range c.results {
		if key == text || ent.gen == gen {
			continue
		}
		c.evictLocked(key, ent)
		if len(c.results) <= c.maxResults && c.nIDs <= c.maxIDs {
			return
		}
	}
	for key, ent := range c.results {
		if key == text {
			continue
		}
		c.evictLocked(key, ent)
		if len(c.results) <= c.maxResults && c.nIDs <= c.maxIDs {
			return
		}
	}
	// Unreachable: once every other entry is evicted, the fresh entry
	// stands alone and the up-front admission check guaranteed a lone
	// entry fits both bounds.
}

// evictLocked removes one result entry.
//
// vet:holds c.mu
func (c *Cache) evictLocked(key string, ent *resultEntry) {
	delete(c.results, key)
	c.nIDs -= len(ent.ids)
	mResultEvict.Inc()
}

// Eval evaluates q against e, serving from the result cache when an
// entry exists at exactly the caller's generation. The returned slice
// is a fresh copy the caller owns. gen must identify the snapshot e
// belongs to; passing a generation that does not match the engine
// yields stale reads, which is why dyndoc reads both from one atomic
// snapshot load.
func (c *Cache) Eval(e *xpath.Engine, gen uint64, q *xpath.Query) ([]int, error) {
	text := q.String()
	if ids, ok := c.lookupResult(text, gen); ok {
		mResultHits.Inc()
		return cloneIDs(ids), nil
	}
	mResultMisses.Inc()
	ids, err := c.planFor(e, q, text).Eval(e)
	if err != nil {
		return nil, err
	}
	c.storeResult(text, gen, ids)
	return cloneIDs(ids), nil
}

// Explain evaluates q with instrumentation and returns the EXPLAIN
// report. The result cache state is reported as it stood before the
// call (hit at this generation or not); the execution itself always
// runs fully so every per-step actual is measured, and its result
// refreshes the cache. Explain does not bump the hit/miss counters —
// diagnostics should not skew the production cache metrics.
func (c *Cache) Explain(e *xpath.Engine, gen uint64, q *xpath.Query) (*Report, error) {
	text := q.String()
	_, hit := c.lookupResult(text, gen)
	p := c.planFor(e, q, text)
	rec := newReport(p, e)
	rec.Generation = gen
	if hit {
		rec.Cache = "hit"
	} else {
		rec.Cache = "miss"
	}
	ids, err := p.run(e, rec)
	if err != nil {
		return nil, err
	}
	c.storeResult(text, gen, ids)
	return rec, nil
}

// cloneIDs defensively copies a cached result (nil stays nil, so an
// empty result keeps the engine's nil convention).
func cloneIDs(ids []int) []int {
	if ids == nil {
		return nil
	}
	return append([]int(nil), ids...)
}

// Explain compiles a throwaway plan for q against e and executes it
// instrumented — the cache-less path Document.Explain uses.
func Explain(e *xpath.Engine, q *xpath.Query) (*Report, error) {
	p := For(e, q)
	rec := newReport(p, e)
	rec.Cache = "off"
	if _, err := p.run(e, rec); err != nil {
		return nil, err
	}
	return rec, nil
}
