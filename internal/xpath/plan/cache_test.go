package plan

import "testing"

// checkBounds asserts the cache invariant storeResult must preserve:
// the entry count and the total cached ids never exceed the
// construction bounds, and the nIDs accounting matches the map.
func checkBounds(t *testing.T, c *Cache) {
	t.Helper()
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, ent := range c.results {
		total += len(ent.ids)
	}
	if total != c.nIDs {
		t.Fatalf("nIDs accounting drift: counted %d, recorded %d", total, c.nIDs)
	}
	if len(c.results) > c.maxResults {
		t.Fatalf("%d entries cached, bound is %d", len(c.results), c.maxResults)
	}
	if c.nIDs > c.maxIDs {
		t.Fatalf("%d ids cached, bound is %d", c.nIDs, c.maxIDs)
	}
}

func seqIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// TestCacheBoundsTinyLimits is the regression test for the oversize
// result-cache leak: storeResult never evicted the entry it had just
// stored, so one result larger than maxIDs was cached permanently,
// pinning the cache over its memory bound — and on its way in it
// evicted every other entry in a futile attempt to make room. An
// oversize result must be refused outright and leave the rest of the
// cache intact.
func TestCacheBoundsTinyLimits(t *testing.T) {
	c := NewCacheBounds(2, 8)

	c.storeResult("a", 1, seqIDs(4))
	if _, ok := c.lookupResult("a", 1); !ok {
		t.Fatal("in-bounds result was not cached")
	}

	// An oversize store must not be admitted and must not wipe "a".
	c.storeResult("big", 1, seqIDs(16))
	checkBounds(t, c)
	if _, ok := c.lookupResult("big", 1); ok {
		t.Fatal("result larger than maxIDs was cached; the bound is pinned over its budget forever")
	}
	if _, ok := c.lookupResult("a", 1); !ok {
		t.Fatal("refusing an oversize result evicted an unrelated in-bounds entry")
	}

	// Fill to the brim, then overflow by one entry: eviction trims back
	// inside both bounds without touching the fresh store.
	c.storeResult("b", 1, seqIDs(4))
	checkBounds(t, c)
	c.storeResult("c", 2, seqIDs(4))
	checkBounds(t, c)
	if _, ok := c.lookupResult("c", 2); !ok {
		t.Fatal("fresh in-bounds result was evicted in favor of older entries")
	}

	// Overwriting an entry with an oversize result drops the stale
	// entry (wrong at this generation anyway) and refuses the new one.
	c.storeResult("c", 3, seqIDs(16))
	checkBounds(t, c)
	if _, ok := c.lookupResult("c", 2); ok {
		t.Fatal("stale entry survived an oversize overwrite")
	}
	if _, ok := c.lookupResult("c", 3); ok {
		t.Fatal("oversize overwrite was cached")
	}

	// A zero-entry cache refuses everything rather than growing.
	z := NewCacheBounds(0, 8)
	z.storeResult("a", 1, seqIDs(1))
	checkBounds(t, z)
	if _, ok := z.lookupResult("a", 1); ok {
		t.Fatal("zero-capacity cache admitted an entry")
	}
}
