package plan

import (
	"fmt"

	"repro/internal/xpath"
)

// Eval executes the plan against an engine and returns the matches in
// document order — always the same set the naive engine's Eval would
// return for the plan's query. The result is a fresh slice the caller
// owns.
func (p *Plan) Eval(e *xpath.Engine) ([]int, error) { return p.run(e, nil) }

// run executes the plan, optionally filling an EXPLAIN report's
// measured cardinalities. rec is nil on the hot path.
func (p *Plan) run(e *xpath.Engine, rec *Report) ([]int, error) {
	if p.Query.Relative {
		return nil, fmt.Errorf("xpath: Eval needs an absolute query, got %q", p.Query)
	}
	var (
		out []int
		err error
	)
	switch p.Strategy {
	case FallbackAxes:
		out, err = e.Eval(p.Query)
	case Anchored:
		out, err = p.runAnchored(e, rec)
	case PathCheck:
		out, err = p.runPathCheck(e, rec)
	default:
		out, err = p.runLeftRight(e, rec)
	}
	if rec != nil && err == nil {
		rec.Matches = len(out)
		if n := len(rec.Steps); n > 0 {
			rec.Steps[n-1].Actual = len(out)
		}
	}
	return out, err
}

// runLeftRight is the engine's own join order, with every structural
// join partitioned when its candidate list is large.
func (p *Plan) runLeftRight(e *xpath.Engine, rec *Report) ([]int, error) {
	var out []int
	borrowed := false
	for i, step := range p.Query.Steps {
		switch {
		case i == 0 && step.Axis == xpath.Child:
			out = nil
			if r := e.Root(); r >= 0 && e.NameMatches(step.Name, r) {
				out = []int{r}
			}
			borrowed = false
		case i == 0:
			// Borrow the index's document-ordered list (see
			// Engine.Candidates); copied below only if it survives to
			// the return untouched.
			out = e.Candidates(step.Name)
			borrowed = true
		default:
			out = joinDownPar(e, out, e.Candidates(step.Name), step.Axis == xpath.Descendant, rec)
			borrowed = false
		}
		var err error
		out, err = e.FilterPreds(out, step)
		if err != nil {
			return nil, err
		}
		if len(step.Preds) > 0 {
			borrowed = false
		}
		if rec != nil {
			rec.Steps[i].Actual = len(out)
		}
	}
	if borrowed {
		out = append([]int(nil), out...)
	}
	return out, nil
}

// runAnchored evaluates outward from the anchor step. Upward pass:
// pruned[i] is the subset of step i's (predicate-filtered) candidates
// with a qualifying chain down to the anchor, computed by reverse
// semi-joins from pruned[i+1]. Downward pass: ordinary joins over the
// pruned lists re-establish the root-to-anchor connection, yielding
// after step i exactly {naive result for step i} ∩ {nodes on a chain
// to the anchor} — equal to the naive result at the anchor itself,
// since every anchor survivor trivially chains to itself. Predicates
// commute with both joins because they are node-local
// (Engine.FilterPreds), which is what licenses filtering the pruned
// lists instead of the naive intermediate results.
func (p *Plan) runAnchored(e *xpath.Engine, rec *Report) ([]int, error) {
	steps := p.Query.Steps
	a := p.Anchor
	pruned := make([][]int, a+1)
	anchorCand, err := e.FilterPreds(e.Candidates(steps[a].Name), steps[a])
	if err != nil {
		return nil, err
	}
	pruned[a] = anchorCand
	for i := a - 1; i >= 0; i-- {
		sel := joinUpPar(e, e.Candidates(steps[i].Name), pruned[i+1], steps[i+1].Axis == xpath.Descendant, rec)
		if i == 0 && steps[0].Axis == xpath.Child {
			// A child-axis first step matches only the document root.
			r := e.Root()
			var keep []int
			for _, v := range sel {
				if v == r {
					keep = append(keep, v)
				}
			}
			sel = keep
		}
		sel, err = e.FilterPreds(sel, steps[i])
		if err != nil {
			return nil, err
		}
		pruned[i] = sel
		if rec != nil {
			rec.Steps[i].Actual = len(sel)
		}
	}
	out := pruned[0]
	for i := 1; i <= a; i++ {
		out = joinDownPar(e, out, pruned[i], steps[i].Axis == xpath.Descendant, rec)
	}
	if rec != nil {
		rec.Steps[a].Actual = len(out)
	}
	return p.runForward(e, out, rec)
}

// runPathCheck verifies each anchor candidate's ancestor chain
// against the predicate-free step prefix directly — no intermediate
// candidate list is ever materialized, so a huge early step (the `*`
// in Q6) costs nothing.
func (p *Plan) runPathCheck(e *xpath.Engine, rec *Report) ([]int, error) {
	steps := p.Query.Steps
	a := p.Anchor
	out := pathFilterPar(e, steps, a, e.Candidates(steps[a].Name), rec)
	out, err := e.FilterPreds(out, steps[a])
	if err != nil {
		return nil, err
	}
	if rec != nil {
		rec.Steps[a].Actual = len(out)
	}
	return p.runForward(e, out, rec)
}

// runForward evaluates the steps after the anchor exactly as
// leftright would, starting from the anchor's survivors.
func (p *Plan) runForward(e *xpath.Engine, out []int, rec *Report) ([]int, error) {
	steps := p.Query.Steps
	for i := p.Anchor + 1; i < len(steps); i++ {
		out = joinDownPar(e, out, e.Candidates(steps[i].Name), steps[i].Axis == xpath.Descendant, rec)
		var err error
		out, err = e.FilterPreds(out, steps[i])
		if err != nil {
			return nil, err
		}
		if rec != nil {
			rec.Steps[i].Actual = len(out)
		}
	}
	return out, nil
}

// pathScratch is one worker's reusable state for the ancestor-walk
// verifier: the candidate's ancestor chain and the two rows of the
// reachability DP.
type pathScratch struct {
	path []int  // ancestors of the candidate, parent first
	cur  []bool // positions (depth from root) the step prefix can reach
	nxt  []bool
}

// pathFilterRange keeps the candidates whose ancestor chain admits
// the step prefix. Survivors cannot outnumber the candidates, so one
// full-size allocation replaces the append growth cycle.
func pathFilterRange(e *xpath.Engine, steps []xpath.Step, anchor int, cand []int, s *pathScratch) []int {
	if len(cand) == 0 {
		return nil
	}
	out := make([]int, 0, len(cand))
	for _, d := range cand {
		if admitPath(e, steps, anchor, d, s) {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// admitPath reports whether candidate d has proper ancestors
// u_0, …, u_{anchor-1} matching steps[0..anchor-1] such that each
// u_{j+1} is a child (resp. descendant) of u_j per steps[j+1].Axis,
// u_0 is the document root when steps[0] is child-axis, and d itself
// relates to u_{anchor-1} per steps[anchor].Axis. In a spine query
// every chain node is a proper ancestor of d, so a boolean DP over
// d's ancestor chain (root at position 0) decides this in
// O(anchor × depth):
//
//	reach_j = { positions the chain can occupy after matching step j }
//	child transition:      i ∈ reach_{j+1} iff i-1 ∈ reach_j
//	descendant transition: i ∈ reach_{j+1} iff i > min(reach_j)
//
// intersected with the name test at each position; the candidate is
// admitted when reach_{anchor-1} contains the parent position (child
// anchor axis) or is non-empty (descendant).
func admitPath(e *xpath.Engine, steps []xpath.Step, anchor int, d int, s *pathScratch) bool {
	s.path = s.path[:0]
	for v := e.ParentOf(d); v >= 0; v = e.ParentOf(v) {
		s.path = append(s.path, v)
	}
	m := len(s.path)
	if m == 0 {
		return false // the root has no proper ancestor to match steps[0]
	}
	pos := func(i int) int { return s.path[m-1-i] } // ancestor at depth i
	cur, nxt := resetBools(s.cur, m), resetBools(s.nxt, m)
	s.cur, s.nxt = cur, nxt
	any := false
	if steps[0].Axis == xpath.Child {
		cur[0] = e.NameMatches(steps[0].Name, pos(0))
		any = cur[0]
	} else {
		for i := 0; i < m; i++ {
			cur[i] = e.NameMatches(steps[0].Name, pos(i))
			any = any || cur[i]
		}
	}
	for j := 1; j < anchor && any; j++ {
		for i := range nxt {
			nxt[i] = false
		}
		any = false
		if steps[j].Axis == xpath.Child {
			for i := 1; i < m; i++ {
				if cur[i-1] && e.NameMatches(steps[j].Name, pos(i)) {
					nxt[i] = true
					any = true
				}
			}
		} else {
			lo := -1
			for i := 0; i < m; i++ {
				if cur[i] {
					lo = i
					break
				}
			}
			for i := lo + 1; lo >= 0 && i < m; i++ {
				if e.NameMatches(steps[j].Name, pos(i)) {
					nxt[i] = true
					any = true
				}
			}
		}
		cur, nxt = nxt, cur
	}
	if !any {
		return false
	}
	if steps[anchor].Axis == xpath.Child {
		return cur[m-1] // the chain must end at d's parent
	}
	return true
}

// resetBools returns b resized to n with every entry false.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}
