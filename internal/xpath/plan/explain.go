package plan

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// StepReport is one row of an EXPLAIN tree: the step text, the
// planner's cardinality estimate, the measured cardinality (-1 when
// the strategy never materializes that step — pathcheck's verified
// prefix), and the evaluation phase the step ran in.
type StepReport struct {
	Text   string
	Est    int
	Actual int
	Phase  string
}

// Report is the EXPLAIN output for one execution: the chosen
// strategy and anchor, the cost-model values behind the choice, the
// snapshot generation and result-cache state, the widest partition
// fan-out any operator used, and the per-step estimate/actual rows.
type Report struct {
	Query         string
	Strategy      Strategy
	Anchor        int // 0-based step index; -1 when the strategy has none
	CostLeftRight float64
	CostChosen    float64
	Generation    uint64
	Cache         string // "hit", "miss" or "off"
	Parallelism   int    // max partitions any operator split into
	Steps         []StepReport
	Matches       int
}

// newReport builds the report skeleton for a plan: step texts,
// fresh estimates against e, phases per strategy, actuals unset.
func newReport(p *Plan, e *xpath.Engine) *Report {
	rec := &Report{
		Query:         p.Text,
		Strategy:      p.Strategy,
		Anchor:        -1,
		CostLeftRight: p.CostLeftRight,
		CostChosen:    p.CostChosen,
		Parallelism:   1,
		Steps:         make([]StepReport, len(p.Query.Steps)),
	}
	if p.Strategy == Anchored || p.Strategy == PathCheck {
		rec.Anchor = p.Anchor
	}
	est := estimates(e, p.Query)
	for i, s := range p.Query.Steps {
		rec.Steps[i] = StepReport{
			Text:   stepText(s),
			Est:    est[i],
			Actual: -1,
			Phase:  phaseOf(p, i),
		}
	}
	return rec
}

// stepText renders one step the way Query.String would.
func stepText(s xpath.Step) string {
	q := xpath.Query{Steps: []xpath.Step{s}}
	return q.String()
}

// phaseOf names the role step i plays under the plan's strategy.
func phaseOf(p *Plan, i int) string {
	switch p.Strategy {
	case FallbackAxes:
		return "fallback"
	case Anchored:
		switch {
		case i < p.Anchor:
			return "prune-up"
		case i == p.Anchor:
			return "anchor"
		}
		return "join"
	case PathCheck:
		switch {
		case i < p.Anchor:
			return "path-verified"
		case i == p.Anchor:
			return "anchor"
		}
		return "join"
	}
	if i == 0 {
		return "scan"
	}
	return "join"
}

// String renders the report as the fixed-format text cmd/xquery
// -explain prints (pinned by the golden test in the dynxml package).
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN %s\n", r.Query)
	if r.Anchor >= 0 {
		fmt.Fprintf(&sb, "strategy: %s anchor=%d\n", r.Strategy, r.Anchor+1)
	} else {
		fmt.Fprintf(&sb, "strategy: %s\n", r.Strategy)
	}
	if r.Strategy != FallbackAxes {
		fmt.Fprintf(&sb, "cost: chosen=%.0f leftright=%.0f\n", r.CostChosen, r.CostLeftRight)
	}
	if r.Cache == "off" {
		fmt.Fprintf(&sb, "cache: off\n")
	} else {
		fmt.Fprintf(&sb, "cache: result=%s generation=%d\n", r.Cache, r.Generation)
	}
	fmt.Fprintf(&sb, "parallelism: %d\n", r.Parallelism)
	for i, s := range r.Steps {
		actual := "-"
		if s.Actual >= 0 {
			actual = fmt.Sprintf("%d", s.Actual)
		}
		fmt.Fprintf(&sb, "step %d: %s est=%d actual=%s phase=%s\n", i+1, s.Text, s.Est, actual, s.Phase)
	}
	fmt.Fprintf(&sb, "matches: %d\n", r.Matches)
	return sb.String()
}
