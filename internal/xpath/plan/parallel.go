package plan

import (
	"runtime"
	"sync"

	"repro/internal/metrics"
	"repro/internal/xpath"
)

// mJoinParts records, per partitioned operator execution (structural
// joins and pathcheck scans), how many contiguous parts it split
// into. 1 = sequential fallback.
var mJoinParts = metrics.Default.Histogram("xpath_join_parallel_parts", metrics.LinearBuckets(1, 1, 16))

const (
	// parallelThreshold is the candidate-list size below which a
	// partitioned operator always runs sequentially: goroutine
	// handoff costs more than a small merge saves.
	parallelThreshold = 8192
	// minPartSize keeps each worker's range large enough to amortize
	// its spawn, bounding the pool below GOMAXPROCS on mid-size
	// inputs.
	minPartSize = 4096
)

// partitions returns how many contiguous ranges an input of n
// candidates splits into: 1 below the threshold, otherwise bounded by
// both GOMAXPROCS and n/minPartSize.
func partitions(n int) int {
	if n < parallelThreshold {
		return 1
	}
	p := runtime.GOMAXPROCS(0)
	if byData := n / minPartSize; p > byData {
		p = byData
	}
	if p < 1 {
		p = 1
	}
	return p
}

// bounds returns the half-open range of part k of n split parts ways.
func bounds(n, parts, k int) (int, int) {
	return k * n / parts, (k + 1) * n / parts
}

// notePartitions records the split in the metric and the report.
func notePartitions(parts int, rec *Report) {
	mJoinParts.Observe(float64(parts))
	if rec != nil && parts > rec.Parallelism {
		rec.Parallelism = parts
	}
}

// joinDownPar is Engine.JoinDown with the candidate list partitioned
// into contiguous ranges evaluated concurrently. JoinDown(ctx,
// cand[a:b]) depends only on ctx and cand[a:b], and both inputs and
// outputs are in document order, so the merge is a pure concat — no
// sort, no dedup.
func joinDownPar(e *xpath.Engine, ctx, cand []int, desc bool, rec *Report) []int {
	parts := partitions(len(cand))
	notePartitions(parts, rec)
	if parts == 1 {
		return e.JoinDown(ctx, cand, desc)
	}
	outs := make([][]int, parts)
	var wg sync.WaitGroup
	for k := 0; k < parts; k++ {
		lo, hi := bounds(len(cand), parts, k)
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			outs[k] = e.JoinDown(ctx, cand[lo:hi], desc)
		}(k, lo, hi)
	}
	wg.Wait()
	return concat(outs)
}

// joinUpPar is Engine.JoinUp with the candidate list partitioned.
// Each worker marks the context nodes its candidate range proves into
// a private mark vector; the vectors are OR-merged, which is exact
// because a context node qualifies iff some candidate in some range
// sits below it.
func joinUpPar(e *xpath.Engine, ctx, cand []int, desc bool, rec *Report) []int {
	parts := partitions(len(cand))
	notePartitions(parts, rec)
	if parts == 1 {
		return e.JoinUp(ctx, cand, desc)
	}
	marks := make([][]bool, parts)
	var wg sync.WaitGroup
	for k := 0; k < parts; k++ {
		lo, hi := bounds(len(cand), parts, k)
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			m := make([]bool, len(ctx))
			e.JoinUpMarks(ctx, cand[lo:hi], desc, m)
			marks[k] = m
		}(k, lo, hi)
	}
	wg.Wait()
	merged := marks[0]
	for k := 1; k < parts; k++ {
		for i, m := range marks[k] {
			if m {
				merged[i] = true
			}
		}
	}
	var out []int
	for i, m := range merged {
		if m {
			out = append(out, ctx[i])
		}
	}
	return out
}

// pathFilterPar partitions the anchor candidate list and verifies
// each range's ancestor chains on its own worker with private
// scratch. Candidates are admitted in place, so per-part outputs
// concatenate in document order.
func pathFilterPar(e *xpath.Engine, steps []xpath.Step, anchor int, cand []int, rec *Report) []int {
	parts := partitions(len(cand))
	notePartitions(parts, rec)
	if parts == 1 {
		var s pathScratch
		return pathFilterRange(e, steps, anchor, cand, &s)
	}
	outs := make([][]int, parts)
	var wg sync.WaitGroup
	for k := 0; k < parts; k++ {
		lo, hi := bounds(len(cand), parts, k)
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			var s pathScratch
			outs[k] = pathFilterRange(e, steps, anchor, cand[lo:hi], &s)
		}(k, lo, hi)
	}
	wg.Wait()
	return concat(outs)
}

// concat merges per-part outputs; parts are document-ordered and
// disjoint by construction.
func concat(outs [][]int) []int {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total == 0 {
		return nil
	}
	out := make([]int, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}
