// Package plan is the cost-based query planner over xpath.Engine.
//
// The naive engine evaluates steps strictly left-to-right, which is
// optimal when every step narrows the result but pathological when an
// early step has a huge candidate list (the `*` step of the paper's
// Q6 scans every element of the document). The planner estimates
// per-step selectivity from the per-name candidate counts the engine
// already indexes — plus a depth estimate derived from the label
// code-length histograms in internal/metrics — and picks the cheapest
// of three result-equivalent strategies:
//
//   - leftright: the engine's own document-ordered join sequence,
//     with large structural joins partitioned across a bounded worker
//     pool (document order makes the merge a pure concat).
//   - anchored: evaluate outward from the most selective name test:
//     an upward semi-join pass (Engine.JoinUp) prunes every earlier
//     step's candidate list down to nodes that lead to the anchor,
//     then a downward pass re-validates the pruned lists with
//     ordinary joins. Predicates run on the pruned lists — often
//     orders of magnitude smaller than what leftright filters.
//   - pathcheck: when every step before the anchor is predicate-free,
//     skip the intermediate joins entirely and verify each anchor
//     candidate by walking its ancestor chain (Engine.ParentOf)
//     against the step prefix. Cost is |anchor| × depth regardless of
//     how large the intermediate candidate lists are — the strategy
//     that beats leftright on Q6-shaped queries.
//
// Queries using axes outside the child/descendant spine fall back to
// the engine's reference evaluator unchanged. Every strategy is
// proven result-equivalent to the naive engine by the property tests
// in this package (the naive path is the retained Ref oracle, the
// same discipline bitstr and cdbs use for their kernels).
package plan

import (
	"repro/internal/metrics"
	"repro/internal/xpath"
)

// Strategy selects how a plan evaluates its query.
type Strategy int

const (
	// LeftRight is the engine's document-ordered join sequence (with
	// parallel partitioned joins) — the planner's baseline.
	LeftRight Strategy = iota
	// Anchored prunes with upward semi-joins to the anchor step, then
	// re-validates downward.
	Anchored
	// PathCheck verifies the predicate-free step prefix by ancestor
	// walks from the anchor's candidates.
	PathCheck
	// FallbackAxes delegates to the engine's reference evaluator
	// (query uses axes outside the child/descendant spine).
	FallbackAxes
)

// String names the strategy as EXPLAIN prints it.
func (s Strategy) String() string {
	switch s {
	case LeftRight:
		return "leftright"
	case Anchored:
		return "anchored"
	case PathCheck:
		return "pathcheck"
	case FallbackAxes:
		return "fallback-axes"
	}
	return "unknown"
}

// Plan is a compiled evaluation strategy for one query. A Plan holds
// no engine state: the same plan executes against any engine (any
// snapshot) of the same document lineage, which is what lets the plan
// cache key on query text alone. Strategy choice is driven by the
// statistics of the engine the plan was compiled against; statistics
// drift across snapshots can make a cached plan suboptimal but never
// incorrect.
type Plan struct {
	// Query is the parsed query the plan evaluates.
	Query *xpath.Query
	// Text is Query.String(), the cache key.
	Text string
	// Strategy is the chosen evaluation strategy.
	Strategy Strategy
	// Anchor is the 0-based step index evaluation is anchored on
	// (Anchored and PathCheck only).
	Anchor int
	// CostLeftRight and CostChosen record the cost-model values the
	// choice was made on, in label-predicate-call units.
	CostLeftRight float64
	CostChosen    float64
}

// Planner cost-model constants, in units of one label predicate call.
const (
	// walkWeight discounts one ancestor-walk level against a label
	// predicate call: a parent hop is an array index plus a short
	// string equality, measured at under a tenth of a bit-string
	// label comparison on the D5 corpus.
	walkWeight = 0.08
	// predWeight is the assumed cost of evaluating one predicate on
	// one node (a sub-query or a sibling scan).
	predWeight = 8.0
	// chooseMargin is the hysteresis: an alternative strategy must
	// beat leftright by this factor to displace it, so estimation
	// noise does not flip plans.
	chooseMargin = 0.9
)

// meanDepth estimates the document's mean element depth from the
// process-wide label code-length histograms (cdbs bits at roughly two
// bits per level, qed digits at roughly one per level). The histogram
// is a process aggregate, not a per-document statistic, so the value
// only tunes cost constants — never correctness. With no observations
// it falls back to a typical XML depth.
func meanDepth() float64 {
	if m := mCDBSCodeLen.Mean(); m > 0 {
		return clampDepth(m / 2)
	}
	if m := mQEDCodeLen.Mean(); m > 0 {
		return clampDepth(m)
	}
	return 8
}

var (
	mCDBSCodeLen = metrics.Default.Histogram("cdbs_code_len_bits", metrics.ExpBuckets(1, 2, 12))
	mQEDCodeLen  = metrics.Default.Histogram("qed_code_len_digits", metrics.ExpBuckets(1, 2, 12))
)

func clampDepth(d float64) float64 {
	if d < 4 {
		return 4
	}
	if d > 32 {
		return 32
	}
	return d
}

// spine reports whether every step uses the child or descendant axis
// — the fragment the planner can reorder.
func spine(q *xpath.Query) bool {
	for _, s := range q.Steps {
		if s.Axis != xpath.Child && s.Axis != xpath.Descendant {
			return false
		}
	}
	return true
}

// stepCounts returns the per-step candidate-list sizes — the
// selectivity statistics every cost formula below consumes. The first
// step on the child axis is the document root: at most one node.
func stepCounts(e *xpath.Engine, q *xpath.Query) []int {
	counts := make([]int, len(q.Steps))
	for i, s := range q.Steps {
		if i == 0 && s.Axis == xpath.Child {
			counts[i] = 1
			continue
		}
		counts[i] = e.CandidateCount(s.Name)
	}
	return counts
}

// estimates returns the planner's per-step cardinality estimate: the
// candidate count capped by zero-propagation (an empty step empties
// everything after it). EXPLAIN prints these next to the measured
// actuals, so the model's looseness is visible.
func estimates(e *xpath.Engine, q *xpath.Query) []int {
	est := stepCounts(e, q)
	dead := false
	for i := range est {
		if dead {
			est[i] = 0
		}
		if est[i] == 0 {
			dead = true
		}
	}
	return est
}

// predCost models filtering est nodes through the step's predicates.
func predCost(step xpath.Step, est int) float64 {
	return float64(len(step.Preds)) * float64(est) * predWeight
}

// costLeftRight models the engine's join sequence: each step scans
// the previous result plus its own candidate list, then filters.
func costLeftRight(q *xpath.Query, counts []int) float64 {
	cost := 0.0
	prev := 1
	for i, s := range q.Steps {
		cost += float64(prev) + float64(counts[i]) + predCost(s, counts[i])
		prev = counts[i]
	}
	return cost
}

// costForward models the steps after an anchor (identical to the
// leftright tail starting from the anchor's estimated survivors).
func costForward(q *xpath.Query, counts []int, anchor int) float64 {
	cost := 0.0
	prev := counts[anchor]
	for i := anchor + 1; i < len(q.Steps); i++ {
		cost += float64(prev) + float64(counts[i]) + predCost(q.Steps[i], counts[i])
		prev = counts[i]
	}
	return cost
}

// costPathCheck models verifying counts[anchor] candidates by an
// ancestor walk of depth d̄ against an anchor-step prefix.
func costPathCheck(q *xpath.Query, counts []int, anchor int, depth float64) float64 {
	walk := float64(counts[anchor]) * (depth + float64(anchor)) * walkWeight
	return walk + predCost(q.Steps[anchor], counts[anchor]) + costForward(q, counts, anchor)
}

// costAnchored models the upward semi-join pass plus the downward
// re-validation, mirroring runAnchored's scans: the semi-join at step
// i reads both its own candidate list and the already-pruned list
// from step i+1 (at i = anchor-1 that is the full anchor list), while
// predicates and the downward validation joins run on lists pruned to
// at most the next pruned list's size.
func costAnchored(q *xpath.Query, counts []int, anchor int) float64 {
	cost := 0.0
	prunedNext := counts[anchor]
	for i := anchor - 1; i >= 0; i-- {
		pruned := min(counts[i], prunedNext)
		// Upward semi-join scans both inputs; predicate filtering and
		// one downward validation join touch only the pruned list.
		cost += float64(counts[i]) + float64(prunedNext) + predCost(q.Steps[i], pruned) + 2*float64(pruned)
		prunedNext = pruned
	}
	cost += predCost(q.Steps[anchor], counts[anchor]) + costForward(q, counts, anchor)
	return cost
}

// For compiles a plan for q against e's statistics. Compilation never
// fails: queries outside the child/descendant spine compile to the
// fallback strategy.
func For(e *xpath.Engine, q *xpath.Query) *Plan {
	p := &Plan{Query: q, Text: q.String(), Strategy: LeftRight}
	if !spine(q) {
		p.Strategy = FallbackAxes
		return p
	}
	counts := stepCounts(e, q)
	depth := meanDepth()
	p.CostLeftRight = costLeftRight(q, counts)
	p.CostChosen = p.CostLeftRight

	// predFree[i]: steps 0..i-1 carry no predicates (pathcheck
	// eligibility for an anchor at step i).
	prefixPredFree := true
	for a := 1; a < len(q.Steps); a++ {
		if len(q.Steps[a-1].Preds) > 0 {
			prefixPredFree = false
		}
		if c := costAnchored(q, counts, a); c < p.CostChosen*chooseMargin {
			p.Strategy, p.Anchor, p.CostChosen = Anchored, a, c
		}
		if prefixPredFree {
			if c := costPathCheck(q, counts, a, depth); c < p.CostChosen*chooseMargin {
				p.Strategy, p.Anchor, p.CostChosen = PathCheck, a, c
			}
		}
	}
	return p
}
