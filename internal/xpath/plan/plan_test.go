package plan

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/prefix"
	"repro/internal/registry"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// randomNamedDoc builds a random document over a small vocabulary so
// that queries hit (same shape as the xpath oracle fuzzer).
func randomNamedDoc(gen *rand.Rand, n int) *xmltree.Document {
	names := []string{"a", "b", "c", "d"}
	root := xmltree.NewElement("root")
	elems := []*xmltree.Node{root}
	for len(elems) < n {
		p := elems[gen.Intn(len(elems))]
		child := xmltree.NewElement(names[gen.Intn(len(names))])
		p.AppendChild(child)
		elems = append(elems, child)
	}
	return &xmltree.Document{Root: root}
}

// randomQuery builds a random query; spineOnly restricts it to the
// child/descendant fragment the planner reorders.
func randomQuery(gen *rand.Rand, spineOnly bool) string {
	names := []string{"a", "b", "c", "d", "*", "root"}
	steps := 1 + gen.Intn(4)
	q := ""
	for i := 0; i < steps; i++ {
		sep := "/"
		if gen.Intn(3) == 0 {
			sep = "//"
		}
		axis := ""
		if !spineOnly && i > 0 && sep == "/" {
			switch gen.Intn(12) {
			case 0:
				axis = "preceding-sibling::"
			case 1:
				axis = "following::"
			case 2:
				axis = "following-sibling::"
			case 3:
				axis = "parent::"
			case 4:
				axis = "ancestor::"
			}
		}
		name := names[gen.Intn(len(names))]
		pred := ""
		switch gen.Intn(6) {
		case 0:
			pred = fmt.Sprintf("[%d]", 1+gen.Intn(3))
		case 1:
			pred = fmt.Sprintf("[./%s]", names[gen.Intn(4)])
		case 2:
			pred = fmt.Sprintf("[.//%s]", names[gen.Intn(4)])
		}
		q += sep + axis + name + pred
	}
	return q
}

func testEngine(t *testing.T, doc *xmltree.Document) *xpath.Engine {
	t.Helper()
	lab, err := prefix.New(prefix.VCDBSCodec(), doc)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := xpath.NewEngine(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func normalize(ids []int) []int {
	if len(ids) == 0 {
		return []int{}
	}
	return ids
}

// forcedPlans enumerates every strategy/anchor combination that is
// valid for q, so the executors are exercised even where the cost
// model would never choose them.
func forcedPlans(q *xpath.Query) []*Plan {
	plans := []*Plan{{Query: q, Text: q.String(), Strategy: LeftRight}}
	if !spineForTest(q) {
		plans[0].Strategy = FallbackAxes
		return plans
	}
	prefixPredFree := true
	for a := 1; a < len(q.Steps); a++ {
		if len(q.Steps[a-1].Preds) > 0 {
			prefixPredFree = false
		}
		plans = append(plans, &Plan{Query: q, Text: q.String(), Strategy: Anchored, Anchor: a})
		if prefixPredFree {
			plans = append(plans, &Plan{Query: q, Text: q.String(), Strategy: PathCheck, Anchor: a})
		}
	}
	return plans
}

func spineForTest(q *xpath.Query) bool {
	for _, s := range q.Steps {
		if s.Axis != xpath.Child && s.Axis != xpath.Descendant {
			return false
		}
	}
	return true
}

// TestStrategiesMatchNaive fuzzes random documents and spine queries
// and checks every forced strategy/anchor combination against the
// naive engine — the Ref oracle the xpath package already proves
// correct against a structure-walking evaluator.
func TestStrategiesMatchNaive(t *testing.T) {
	gen := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		doc := randomNamedDoc(gen, 30+gen.Intn(120))
		eng := testEngine(t, doc)
		for qi := 0; qi < 20; qi++ {
			qs := randomQuery(gen, true)
			q, err := xpath.Parse(qs)
			if err != nil {
				t.Fatalf("generated bad query %q: %v", qs, err)
			}
			want, err := eng.Eval(q)
			if err != nil {
				t.Fatalf("naive %q: %v", qs, err)
			}
			for _, p := range forcedPlans(q) {
				got, err := p.Eval(eng)
				if err != nil {
					t.Fatalf("%s/%d %q: %v", p.Strategy, p.Anchor, qs, err)
				}
				if !reflect.DeepEqual(normalize(got), normalize(want)) {
					t.Fatalf("trial %d %s anchor=%d: %q: plan %v, naive %v\ndoc: %s",
						trial, p.Strategy, p.Anchor, qs, got, want, doc)
				}
			}
		}
	}
}

// TestPlannerMatchesNaiveAllSchemes runs the planner-chosen plan —
// including the fallback for non-spine axes — against the naive
// engine under every registered labeling scheme.
func TestPlannerMatchesNaiveAllSchemes(t *testing.T) {
	for _, ent := range registry.All() {
		ent := ent
		t.Run(ent.Name, func(t *testing.T) {
			gen := rand.New(rand.NewSource(int64(len(ent.Name))))
			for trial := 0; trial < 8; trial++ {
				doc := randomNamedDoc(gen, 30+gen.Intn(90))
				lab, err := ent.Build(doc)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := xpath.NewEngine(doc, lab)
				if err != nil {
					t.Fatal(err)
				}
				cache := NewCache()
				for qi := 0; qi < 15; qi++ {
					qs := randomQuery(gen, false)
					q, err := xpath.Parse(qs)
					if err != nil {
						t.Fatalf("generated bad query %q: %v", qs, err)
					}
					want, err := eng.Eval(q)
					if err != nil {
						t.Fatalf("naive %q: %v", qs, err)
					}
					got, err := For(eng, q).Eval(eng)
					if err != nil {
						t.Fatalf("planned %q: %v", qs, err)
					}
					if !reflect.DeepEqual(normalize(got), normalize(want)) {
						t.Fatalf("trial %d: %q: plan %v, naive %v\ndoc: %s", trial, qs, got, want, doc)
					}
					// Twice through the cache: a miss then a hit, both
					// equal to the oracle.
					for pass := 0; pass < 2; pass++ {
						got, err := cache.Eval(eng, 1, q)
						if err != nil {
							t.Fatalf("cached %q: %v", qs, err)
						}
						if !reflect.DeepEqual(normalize(got), normalize(want)) {
							t.Fatalf("trial %d pass %d: %q: cache %v, naive %v", trial, pass, qs, got, want)
						}
					}
				}
			}
		})
	}
}

// TestParallelPartitionedJoins forces multi-part execution (the box
// may have one CPU, so GOMAXPROCS is raised for the test) on a
// document large enough to cross the partition threshold and checks
// the partitioned operators against their sequential forms.
func TestParallelPartitionedJoins(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	gen := rand.New(rand.NewSource(9))
	doc := randomNamedDoc(gen, 6*parallelThreshold)
	eng := testEngine(t, doc)
	ctxQ, err := xpath.Parse("//a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := eng.Eval(ctxQ)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b", "*"} {
		cand := eng.Candidates(name)
		if partitions(len(cand)) < 2 {
			t.Fatalf("document too small to partition %q (%d candidates)", name, len(cand))
		}
		for _, desc := range []bool{false, true} {
			rec := &Report{Parallelism: 1}
			got := joinDownPar(eng, ctx, cand, desc, rec)
			want := eng.JoinDown(eng.Candidates("a"), cand, desc)
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Errorf("joinDownPar(%q, desc=%v) diverges from JoinDown", name, desc)
			}
			if rec.Parallelism < 2 {
				t.Errorf("joinDownPar(%q, desc=%v) did not partition", name, desc)
			}
			gotUp := joinUpPar(eng, ctx, cand, desc, nil)
			wantUp := eng.JoinUp(eng.Candidates("a"), cand, desc)
			if !reflect.DeepEqual(normalize(gotUp), normalize(wantUp)) {
				t.Errorf("joinUpPar(%q, desc=%v) diverges from JoinUp", name, desc)
			}
		}
	}
	// pathFilterPar against the sequential range filter and the naive
	// engine on a Q6-shaped query.
	q, err := xpath.Parse("/root/*//b")
	if err != nil {
		t.Fatal(err)
	}
	cand := eng.Candidates("b")
	var s pathScratch
	seq := pathFilterRange(eng, q.Steps, 2, cand, &s)
	par := pathFilterPar(eng, q.Steps, 2, cand, nil)
	if !reflect.DeepEqual(normalize(seq), normalize(par)) {
		t.Error("pathFilterPar diverges from sequential pathFilterRange")
	}
	want, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Plan{Query: q, Text: q.String(), Strategy: PathCheck, Anchor: 2}).Eval(eng)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Errorf("parallel pathcheck = %d matches, naive = %d", len(got), len(want))
	}
}

// TestCacheGenerations pins the invalidation rule: a result serves
// only at the exact generation it was computed at, a defensive copy
// protects the cached backing array, and the bounds evict.
func TestCacheGenerations(t *testing.T) {
	gen := rand.New(rand.NewSource(3))
	doc := randomNamedDoc(gen, 80)
	eng := testEngine(t, doc)
	q, err := xpath.Parse("//a")
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	hits, misses := mResultHits.Value(), mResultMisses.Value()
	got, err := c.Eval(eng, 1, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("miss path: got %v want %v", got, want)
	}
	if mResultMisses.Value() != misses+1 {
		t.Fatalf("first eval did not count as a miss")
	}
	// Corrupt the returned slice: the cache must have its own copy.
	for i := range got {
		got[i] = -1
	}
	again, err := c.Eval(eng, 1, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("hit path returned corrupted ids: %v", again)
	}
	if mResultHits.Value() != hits+1 {
		t.Fatalf("second eval at same generation did not hit")
	}
	// A different generation is a miss even with an entry present.
	if _, err := c.Eval(eng, 2, q); err != nil {
		t.Fatal(err)
	}
	if mResultMisses.Value() != misses+2 {
		t.Fatalf("generation change did not miss")
	}
	// Eviction: bound of one entry, two distinct queries.
	small := NewCacheBounds(1, 1<<20)
	q2, err := xpath.Parse("//b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Eval(eng, 1, q); err != nil {
		t.Fatal(err)
	}
	if _, err := small.Eval(eng, 1, q2); err != nil {
		t.Fatal(err)
	}
	small.mu.RLock()
	n := len(small.results)
	small.mu.RUnlock()
	if n > 1 {
		t.Fatalf("bounded cache holds %d entries, want <= 1", n)
	}
}

// TestExplainReport pins the report fields EXPLAIN renders from.
func TestExplainReport(t *testing.T) {
	gen := rand.New(rand.NewSource(5))
	doc := randomNamedDoc(gen, 60)
	eng := testEngine(t, doc)
	q, err := xpath.Parse("//a/b")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Explain(eng, q)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cache != "off" {
		t.Errorf("cache-less Explain reports cache=%q", rec.Cache)
	}
	want, err := eng.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Matches != len(want) {
		t.Errorf("Matches = %d, want %d", rec.Matches, len(want))
	}
	if len(rec.Steps) != 2 {
		t.Fatalf("Steps = %d, want 2", len(rec.Steps))
	}
	if rec.Steps[1].Actual != len(want) {
		t.Errorf("last step actual = %d, want %d", rec.Steps[1].Actual, len(want))
	}
	c := NewCache()
	r1, err := c.Explain(eng, 7, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cache != "miss" || r1.Generation != 7 {
		t.Errorf("first cached Explain: cache=%q gen=%d", r1.Cache, r1.Generation)
	}
	r2, err := c.Explain(eng, 7, q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cache != "hit" {
		t.Errorf("second cached Explain: cache=%q, want hit", r2.Cache)
	}
}
