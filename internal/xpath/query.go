// Package xpath implements the XPath fragment the CDBS paper's query
// workload (Table 3, Q1–Q6) needs — the child, descendant,
// preceding-sibling and following axes, name and * node tests, and
// positional and relative-path predicates — plus the
// following-sibling, parent and ancestor axes. Evaluation is driven by
// a labeling scheme's predicates, so per-scheme label comparison costs
// dominate the measured response times, as in Figure 6.
package xpath

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Axis selects the node relationship of a step.
type Axis int

const (
	// Child is the default axis ("/name").
	Child Axis = iota
	// Descendant is the abbreviated "//" axis (descendant-or-self
	// composed with child, as in XPath).
	Descendant
	// PrecedingSibling is "preceding-sibling::".
	PrecedingSibling
	// Following is "following::".
	Following
	// FollowingSibling is "following-sibling::".
	FollowingSibling
	// Parent is "parent::".
	Parent
	// Ancestor is "ancestor::".
	Ancestor
)

// String names the axis.
func (a Axis) String() string {
	switch a {
	case Child:
		return "child"
	case Descendant:
		return "descendant"
	case PrecedingSibling:
		return "preceding-sibling"
	case Following:
		return "following"
	case FollowingSibling:
		return "following-sibling"
	case Parent:
		return "parent"
	case Ancestor:
		return "ancestor"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Pred is one step predicate: either positional ([4]) or a relative
// path existence test ([./title], [.//grpdescr]).
type Pred struct {
	Position int    // > 0 for positional predicates
	Path     *Query // non-nil for relative path predicates
}

// Step is one location step.
type Step struct {
	Axis  Axis
	Name  string // element name, or "*"
	Preds []Pred
}

// Query is a parsed path expression.
type Query struct {
	Steps []Step
	// Relative reports that the query is relative to a context node
	// (predicate paths beginning with "."), not the document root.
	Relative bool
}

// String reassembles the query text.
func (q *Query) String() string {
	var sb strings.Builder
	if q.Relative {
		sb.WriteByte('.')
	}
	for _, s := range q.Steps {
		switch s.Axis {
		case Descendant:
			sb.WriteString("//")
		default:
			sb.WriteString("/")
		}
		switch s.Axis {
		case PrecedingSibling:
			sb.WriteString("preceding-sibling::")
		case Following:
			sb.WriteString("following::")
		case FollowingSibling:
			sb.WriteString("following-sibling::")
		case Parent:
			sb.WriteString("parent::")
		case Ancestor:
			sb.WriteString("ancestor::")
		}
		sb.WriteString(s.Name)
		for _, p := range s.Preds {
			if p.Path != nil {
				sb.WriteString("[" + p.Path.String() + "]")
			} else {
				sb.WriteString("[" + strconv.Itoa(p.Position) + "]")
			}
		}
	}
	return sb.String()
}

// ErrSyntax reports a malformed query.
var ErrSyntax = errors.New("xpath: syntax error")

type parser struct {
	in  string
	pos int
}

// Parse parses a path expression such as
// "/play//personae[./title]/pgroup[.//grpdescr]/persona".
func Parse(in string) (*Query, error) {
	p := &parser{in: in}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing input at %d in %q", ErrSyntax, p.pos, in)
	}
	return q, nil
}

// MustParse is Parse for known-good literals; it panics on error.
func MustParse(in string) *Query {
	q, err := Parse(in)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.peek('.') {
		p.pos++
		q.Relative = true
	}
	for {
		axis, ok, err := p.parseSeparator()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		q.Steps = append(q.Steps, step)
	}
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("%w: empty path in %q", ErrSyntax, p.in)
	}
	return q, nil
}

// parseSeparator consumes "/" or "//", returning the implied axis.
func (p *parser) parseSeparator() (Axis, bool, error) {
	if !p.peek('/') {
		return 0, false, nil
	}
	p.pos++
	if p.peek('/') {
		p.pos++
		return Descendant, true, nil
	}
	return Child, true, nil
}

func (p *parser) peek(c byte) bool { return p.pos < len(p.in) && p.in[p.pos] == c }

// parseStep consumes an optional named axis, a node test and
// predicates.
func (p *parser) parseStep(axis Axis) (Step, error) {
	step := Step{Axis: axis}
	for _, named := range []struct {
		prefix string
		axis   Axis
	}{
		{"preceding-sibling::", PrecedingSibling},
		{"following-sibling::", FollowingSibling},
		{"following::", Following},
		{"parent::", Parent},
		{"ancestor::", Ancestor},
	} {
		if strings.HasPrefix(p.in[p.pos:], named.prefix) {
			if axis == Descendant {
				return step, fmt.Errorf("%w: %q after // at %d", ErrSyntax, named.prefix, p.pos)
			}
			step.Axis = named.axis
			p.pos += len(named.prefix)
			break
		}
	}
	name, err := p.parseName()
	if err != nil {
		return step, err
	}
	step.Name = name
	for p.peek('[') {
		pred, err := p.parsePred()
		if err != nil {
			return step, err
		}
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-'
}

func (p *parser) parseName() (string, error) {
	if p.peek('*') {
		p.pos++
		return "*", nil
	}
	start := p.pos
	for p.pos < len(p.in) && isNameByte(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("%w: expected node test at %d in %q", ErrSyntax, start, p.in)
	}
	return p.in[start:p.pos], nil
}

func (p *parser) parsePred() (Pred, error) {
	p.pos++ // consume '['
	start := p.pos
	depth := 1
	for p.pos < len(p.in) && depth > 0 {
		switch p.in[p.pos] {
		case '[':
			depth++
		case ']':
			depth--
		}
		p.pos++
	}
	if depth != 0 {
		return Pred{}, fmt.Errorf("%w: unclosed predicate at %d in %q", ErrSyntax, start-1, p.in)
	}
	body := p.in[start : p.pos-1]
	if body == "" {
		return Pred{}, fmt.Errorf("%w: empty predicate at %d", ErrSyntax, start)
	}
	if n, err := strconv.Atoi(body); err == nil {
		if n < 1 {
			return Pred{}, fmt.Errorf("%w: position %d at %d", ErrSyntax, n, start)
		}
		return Pred{Position: n}, nil
	}
	sub, err := Parse(body)
	if err != nil {
		return Pred{}, err
	}
	if !sub.Relative {
		return Pred{}, fmt.Errorf("%w: predicate path %q must start with '.'", ErrSyntax, body)
	}
	return Pred{Path: sub}, nil
}
