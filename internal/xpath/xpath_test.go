package xpath

import (
	"reflect"
	"testing"

	"repro/internal/containment"
	"repro/internal/keys"
	"repro/internal/ordpath"
	"repro/internal/prefix"
	"repro/internal/primelbl"
	"repro/internal/scheme"
	"repro/internal/xmltree"
)

func TestParseRoundTrip(t *testing.T) {
	for _, in := range []string{
		"/play/act[4]",
		"/a/parent::b",
		"/a/ancestor::*",
		"/a/following-sibling::c[2]",
		"/play//personae[./title]/pgroup[.//grpdescr]/persona",
		"/play/personae/persona[12]/preceding-sibling::*",
		"//act[2]/following::speaker",
		"//act/scene/speech",
		"/play/*//line",
	} {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := q.String(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "/", "play", "/play[", "/play[]", "/play[0]", "/play[x/y]",
		"/play/[3]", "//preceding-sibling::a", "/a/preceding-sibling::", "/a bc",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

// testDoc is a small play-like document with known query answers.
const testDoc = `<play>
  <title/>
  <personae>
    <title/>
    <persona/><persona/><persona/>
    <pgroup><grpdescr/><persona/><persona/></pgroup>
    <pgroup><persona/></pgroup>
  </personae>
  <act>
    <title/>
    <scene><title/><speech><speaker/><line/><line/></speech></scene>
  </act>
  <act>
    <title/>
    <scene><title/><speech><speaker/><line/></speech>
           <speech><speaker/><line/><line/><line/></speech></scene>
  </act>
  <act><title/><scene><title/><speech><speaker/><line/></speech></scene></act>
</play>`

// engines builds one engine per representative scheme family.
func engines(t *testing.T, doc *xmltree.Document) map[string]*Engine {
	t.Helper()
	out := map[string]*Engine{}
	builders := map[string]scheme.Builder{
		"V-CDBS-Containment":   containment.Build(keys.VCDBS()),
		"QED-Containment":      containment.Build(keys.QED()),
		"F-Binary-Containment": containment.Build(keys.FBinary()),
		"QED-Prefix":           prefix.Build(prefix.QEDCodec()),
		"OrdPath1-Prefix":      prefix.Build(prefix.OrdPath(ordpath.Table1)),
		"DeweyID-Prefix":       prefix.Build(prefix.Dewey()),
		"Prime":                primelbl.BuildLabeling,
	}
	for name, b := range builders {
		lab, err := b(doc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		e, err := NewEngine(doc, lab)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = e
	}
	return out
}

func TestQueriesKnownAnswers(t *testing.T) {
	doc, err := xmltree.ParseString(testDoc)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]int{
		"/play/act[2]":           1,
		"/play/act":              3,
		"//speech":               4,
		"//act/scene/speech":     4,
		"/play/*//line":          7,
		"//line":                 7,
		"/play//persona":         6,
		"/play/personae/persona": 3, // only direct children
		"/play//personae[./title]/pgroup[.//grpdescr]/persona": 2,
		"/play/personae/persona[3]/preceding-sibling::*":       3, // title + 2 personas
		"/play/personae/persona[3]/preceding-sibling::persona": 2,
		"//act[2]/following::speaker":                          1, // act 3's speaker
		"//act[1]/following::speaker":                          3, // acts 2,3
		"//scene/speech[2]":                                    1,
		"//speaker/parent::speech":                             4,
		"//line/ancestor::act":                                 3,
		"//line/ancestor::*":                                   11, // play + 3 acts + 3 scenes + 4 speeches
		"/play/personae/persona[1]/following-sibling::persona": 2,
		"//grpdescr/parent::pgroup":                            1,
		"/play/nosuch":                                         0,
		"//nosuch":                                             0,
		"/wrongroot":                                           0,
		"/*":                                                   1,
	}
	for name, e := range engines(t, doc) {
		for in, want := range wants {
			got, err := e.Count(MustParse(in))
			if err != nil {
				t.Fatalf("%s: %s: %v", name, in, err)
			}
			if got != want {
				t.Errorf("%s: Count(%s) = %d, want %d", name, in, got, want)
			}
		}
	}
}

// All schemes must return identical result sets, not just counts.
func TestSchemesAgreeOnResults(t *testing.T) {
	doc, err := xmltree.ParseString(testDoc)
	if err != nil {
		t.Fatal(err)
	}
	es := engines(t, doc)
	queries := []string{
		"/play//persona", "//act/scene/speech", "/play/*//line",
		"//act[2]/following::speaker",
		"/play/personae/persona[3]/preceding-sibling::*",
	}
	var ref map[string][]int
	for name, e := range es {
		res := map[string][]int{}
		for _, qs := range queries {
			ids, err := e.Eval(MustParse(qs))
			if err != nil {
				t.Fatal(err)
			}
			res[qs] = ids
		}
		if ref == nil {
			ref = res
			continue
		}
		for _, qs := range queries {
			if !reflect.DeepEqual(ref[qs], res[qs]) {
				t.Errorf("%s disagrees on %s: %v vs %v", name, qs, res[qs], ref[qs])
			}
		}
	}
}

func TestEvalRejectsRelative(t *testing.T) {
	doc, err := xmltree.ParseString("<a><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	lab, err := containment.New(keys.VCDBS(), doc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse("./b")
	if _, err := e.Eval(q); err == nil {
		t.Error("relative query accepted by Eval")
	}
	if _, err := e.Eval(MustParse("/preceding-sibling::a")); err == nil {
		t.Error("preceding-sibling from document root accepted")
	}
}

func TestEngineMismatchedLabeling(t *testing.T) {
	doc1, _ := xmltree.ParseString("<a><b/></a>")
	doc2, _ := xmltree.ParseString("<a><b/><c/></a>")
	lab, err := containment.New(keys.VCDBS(), doc1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(doc2, lab); err == nil {
		t.Error("mismatched doc/labeling accepted")
	}
}

func TestCorpusCount(t *testing.T) {
	var corpus Corpus
	for i := 0; i < 3; i++ {
		doc, err := xmltree.ParseString(testDoc)
		if err != nil {
			t.Fatal(err)
		}
		lab, err := containment.New(keys.VCDBS(), doc)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(doc, lab)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, e)
	}
	got, err := corpus.Count(MustParse("//speech"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Errorf("corpus count = %d, want 12", got)
	}
}

func TestTextNodesInvisible(t *testing.T) {
	doc, err := xmltree.ParseString("<a><b>text here</b><b>more</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	lab, err := containment.New(keys.VCDBS(), doc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(doc, lab)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Count(MustParse("/a/*"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("wildcard matched %d nodes, want 2 (text must be invisible)", got)
	}
}
