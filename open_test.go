package dynxml

import (
	"errors"
	"strings"
	"testing"
)

const openSeed = `<library><shelf><book/><book/></shelf><shelf><book/></shelf></library>`

// TestOpenSourceKinds drives every supported src type through Open.
func TestOpenSourceKinds(t *testing.T) {
	doc, err := ParseXMLString(openSeed)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]any{
		"document": doc,
		"string":   openSeed,
		"bytes":    []byte(openSeed),
		"reader":   strings.NewReader(openSeed),
	} {
		t.Run(name, func(t *testing.T) {
			h, err := Open(src)
			if err != nil {
				t.Fatal(err)
			}
			if h.Scheme() != DefaultScheme {
				t.Fatalf("Scheme = %q, want %q", h.Scheme(), DefaultScheme)
			}
			if h.Concurrent() {
				t.Fatal("plain handle reports concurrent")
			}
			if n, err := h.Count("//book"); err != nil || n != 3 {
				t.Fatalf("Count(//book) = %d, %v; want 3", n, err)
			}
		})
	}
	if _, err := Open(42); err == nil {
		t.Fatal("unsupported source type accepted")
	}
	if _, err := Open((*Document)(nil)); err == nil {
		t.Fatal("nil document accepted")
	}
	if _, err := Open("<broken"); err == nil {
		t.Fatal("bad XML accepted")
	}
}

// TestOpenOptions covers WithScheme, WithConcurrent and the typed
// unknown-scheme failure.
func TestOpenOptions(t *testing.T) {
	h, err := Open(openSeed, WithScheme("QED-Prefix"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Scheme() != "QED-Prefix" {
		t.Fatalf("Scheme = %q", h.Scheme())
	}
	if h.Live() == nil || h.Shared() != nil {
		t.Fatal("plain handle accessors wrong")
	}
	if h.Labeling() == nil {
		t.Fatal("no labeling on plain handle")
	}

	c, err := Open(openSeed, WithConcurrent())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Concurrent() || c.Shared() == nil || c.Live() != nil {
		t.Fatal("concurrent handle accessors wrong")
	}
	if c.Labeling() == nil {
		t.Fatal("no labeling on concurrent handle")
	}
	if _, _, err := c.InsertElement(0, 0, "index"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Count("//index"); err != nil || n != 1 {
		t.Fatalf("Count(//index) = %d, %v; want 1", n, err)
	}

	_, err = Open(openSeed, WithScheme("V-CDBS-Containmen"))
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("errors.Is(err, ErrUnknownScheme) = false for %v", err)
	}
	if !strings.Contains(err.Error(), "did you mean") || !strings.Contains(err.Error(), "V-CDBS-Containment") {
		t.Fatalf("near-miss error lacks a suggestion: %q", err)
	}
}

// TestOpenBatch checks ApplyBatch and InsertTreeBatch through the
// handle, including concurrent chunking under WithBatchSize.
func TestOpenBatch(t *testing.T) {
	h, err := Open(openSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.ApplyBatch([]Edit{
		{Op: OpInsertElement, Parent: 0, Pos: 0, Name: "a"},
		{Op: OpInsertElement, Parent: 0, Pos: 0, Name: "b"},
	})
	if err != nil || len(res) != 2 {
		t.Fatalf("ApplyBatch = %d results, %v", len(res), err)
	}

	c, err := Open(openSeed, WithConcurrent(), WithBatchSize(2))
	if err != nil {
		t.Fatal(err)
	}
	edits := make([]Edit, 5)
	for i := range edits {
		edits[i] = Edit{Op: OpInsertElement, Parent: 0, Pos: 0, Name: "x"}
	}
	res, err = c.ApplyBatch(edits)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("chunked ApplyBatch returned %d results, want 5", len(res))
	}
	// 5 edits in chunks of 2 → 3 published snapshots.
	if g := c.Shared().Generation(); g != 3 {
		t.Fatalf("generation %d after chunked batch, want 3", g)
	}
	if n, err := c.Count("//x"); err != nil || n != 5 {
		t.Fatalf("Count(//x) = %d, %v; want 5", n, err)
	}

	frag, err := ParseXMLString("<shelf><book/></shelf>")
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := c.InsertTreeBatch(0, 0, []*Node{frag.Root, frag.Root})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("InsertTreeBatch returned %d slices", len(ids))
	}
	if removed, err := c.DeleteSubtree(ids[0][0]); err != nil || removed != 2 {
		t.Fatalf("DeleteSubtree = %d, %v; want 2", removed, err)
	}
}

// TestDeprecatedShimsMatchOpen checks the legacy constructors agree
// with their Open spellings.
func TestDeprecatedShimsMatchOpen(t *testing.T) {
	doc, err := ParseXMLString(openSeed)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := Label(doc, "V-CDBS-Containment")
	if err != nil {
		t.Fatal(err)
	}
	if lab.Len() != doc.Len() {
		t.Fatalf("Label labeling has %d nodes, document %d", lab.Len(), doc.Len())
	}
	live, err := ParseLive(openSeed, "QED-Prefix")
	if err != nil {
		t.Fatal(err)
	}
	h, err := Open(openSeed, WithScheme("QED-Prefix"))
	if err != nil {
		t.Fatal(err)
	}
	if live.XML() != h.XML() {
		t.Fatal("ParseLive and Open disagree")
	}
	shared, err := ParseShared(openSeed, "V-CDBS-Containment")
	if err != nil {
		t.Fatal(err)
	}
	if shared.Len() != h.Len() {
		t.Fatal("ParseShared and Open disagree on node count")
	}
	for _, bad := range []func() error{
		func() error { _, err := Label(doc, "bogus"); return err },
		func() error { _, err := Live(doc, "bogus"); return err },
		func() error { _, err := ParseLive(openSeed, "bogus"); return err },
		func() error { _, err := ParseShared(openSeed, "bogus"); return err },
	} {
		if err := bad(); !errors.Is(err, ErrUnknownScheme) {
			t.Fatalf("shim error %v does not match ErrUnknownScheme", err)
		}
	}
}

// TestMetricsJSON checks the read-only metrics snapshot carries the
// instrumented keys after some activity.
func TestMetricsJSON(t *testing.T) {
	c, err := Open(openSeed, WithConcurrent())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyBatch([]Edit{{Op: OpInsertElement, Parent: 0, Pos: 0, Name: "m"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryString("//m"); err != nil {
		t.Fatal(err)
	}
	data, err := MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"dyndoc_snapshot_swaps_total",
		"dyndoc_reader_staleness_gens",
		"dyndoc_batch_size",
		"cdbs_code_len_bits",
	} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("metrics snapshot lacks %q:\n%s", key, data)
		}
	}
}
