package dynxml

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pagestore"
)

// pagedSeed builds an XML document with n <item> children (each
// wrapping a <tag>) under a root — enough structure that the paged
// index spans far more pages than a small cache holds.
func pagedSeed(n int) string {
	var b strings.Builder
	b.WriteString("<lib>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<item><tag>t%d</tag></item>", i)
	}
	b.WriteString("</lib>")
	return b.String()
}

// TestPagedMatchesSlice opens the same document on the slice and paged
// backends with a cache far smaller than the index and checks that
// queries, edits and stats agree — the paged backend must be a drop-in
// behind the same Handle API.
func TestPagedMatchesSlice(t *testing.T) {
	text := pagedSeed(2000)
	sl, err := Open(text)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	pg, err := Open(text, WithPagedLabels(t.TempDir()), WithPageCache(pagestore.MinCachePages))
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()

	if got := pg.Stats().Storage.Backend; got != "paged" {
		t.Fatalf("Storage.Backend = %q, want paged", got)
	}
	if got := sl.Stats().Storage.Backend; got != "slice" {
		t.Fatalf("Storage.Backend = %q, want slice", got)
	}

	queries := []string{"/lib", "/lib/item", "//tag", "/lib/item[2]", "//item[./tag]"}
	for _, q := range queries {
		want, err := sl.QueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pg.QueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("query %s: paged %v, slice %v", q, got, want)
		}
	}

	// The same edits on both sides must keep them identical.
	for _, h := range []*Handle{sl, pg} {
		items, err := h.QueryString("/lib/item")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := h.InsertElement(items[10], 0, "extra"); err != nil {
			t.Fatal(err)
		}
		if _, err := h.DeleteSubtree(items[20]); err != nil {
			t.Fatal(err)
		}
	}
	if sl.XML() != pg.XML() {
		t.Fatal("documents diverged after edits")
	}
	for _, q := range append(queries, "//extra") {
		want, _ := sl.QueryString(q)
		got, err := pg.QueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("after edits, query %s: paged %v, slice %v", q, got, want)
		}
	}

	st := pg.Stats().Storage
	if st.AllocatedPages <= pagestore.MinCachePages {
		t.Fatalf("index should outgrow the cache: %d pages allocated", st.AllocatedPages)
	}
	if st.ResidentPages > pagestore.MinCachePages+1 {
		t.Fatalf("resident pages %d exceed the %d-page budget", st.ResidentPages, pagestore.MinCachePages)
	}
	if st.CacheMisses == 0 || st.Writebacks == 0 {
		t.Fatalf("a cache-starved index must miss and write back: %+v", st)
	}
}

// TestPagedFootprintBounded checks the point of paging: the handle's
// estimated footprint charges the bounded page cache, not the on-disk
// index, so it sits far below the slice backend's for the same
// document.
func TestPagedFootprintBounded(t *testing.T) {
	text := pagedSeed(3000)
	sl, err := Open(text)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	pg, err := Open(text, WithPagedLabels(t.TempDir()), WithPageCache(pagestore.MinCachePages))
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	// Warm both so memoized id lists count.
	if _, err := pg.QueryString("//tag"); err != nil {
		t.Fatal(err)
	}
	slFP, pgFP := sl.MemoryFootprint(), pg.MemoryFootprint()
	if pgFP <= 0 || slFP <= 0 {
		t.Fatalf("footprints must be positive: slice %d, paged %d", slFP, pgFP)
	}
	// Both share the per-node constant; the difference is the backend
	// share, where paged must be bounded by its cache (plus memos),
	// while slice grows with every entry.
	backendShare := pgFP - int64(pg.Len())*bytesPerNode
	budget := int64(pagestore.MinCachePages+1) * pagestore.PageSize
	memoAllowance := int64(pg.Len()) * 24 // memoized id slices + name table
	if backendShare > budget+memoAllowance {
		t.Fatalf("paged backend share %d exceeds cache budget %d + memo allowance %d", backendShare, budget, memoAllowance)
	}
}

// TestPagedUnsupportedScheme: schemes without an order-preserving
// label encoding must be refused up front.
func TestPagedUnsupportedScheme(t *testing.T) {
	for _, name := range []string{"V-Binary-Containment", "Float-point-Containment", "QED-Prefix", "Prime"} {
		_, err := Open("<a><b></b></a>", WithScheme(name), WithPagedLabels(t.TempDir()))
		if !errors.Is(err, ErrPagedUnsupported) {
			t.Fatalf("scheme %s: err = %v, want ErrPagedUnsupported", name, err)
		}
	}
	if _, err := Open("<a></a>", WithPageCache(64)); err == nil {
		t.Fatal("WithPageCache without WithPagedLabels must fail")
	}
}

// TestPagedJournalRoundTrip journals a paged document, edits it,
// closes, and replays — the paged index is rebuilt from the journal,
// so every acknowledged edit must be visible, and checkpoints written
// with paged labels must omit the redundant label records.
func TestPagedJournalRoundTrip(t *testing.T) {
	base := t.TempDir()
	jdir := filepath.Join(base, "journal")
	pdir := filepath.Join(base, "journal", "pages")
	open := func(src any) *Handle {
		t.Helper()
		h, err := Open(src, WithJournal(jdir), WithPagedLabels(pdir), WithPageCache(pagestore.MinCachePages), WithRecover())
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := open(pagedSeed(400))
	items, err := h.QueryString("/lib/item")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := h.InsertElement(items[i*7], 0, "mark"); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := h.InsertElement(items[i*11+1], 1, "late"); err != nil {
			t.Fatal(err)
		}
	}
	want := h.XML()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	r := open(nil)
	defer r.Close()
	if got := r.XML(); got != want {
		t.Fatal("replayed document differs")
	}
	if got := r.Stats().Storage.Backend; got != "paged" {
		t.Fatalf("replayed backend %q, want paged", got)
	}
	marks, err := r.QueryString("//mark")
	if err != nil {
		t.Fatal(err)
	}
	late, err := r.QueryString("//late")
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 20 || len(late) != 10 {
		t.Fatalf("replay lost edits: %d marks, %d late", len(marks), len(late))
	}
}

// TestPagedSurvivesPageFileDamage is the paged half of the kill
// matrix: whatever happens to the page files between runs — deletion,
// truncation, bit rot — reopening from the journal must restore every
// acknowledged edit, because pages are a rebuilt cache, never the
// store of record.
func TestPagedSurvivesPageFileDamage(t *testing.T) {
	damage := []struct {
		name string
		hit  func(t *testing.T, path string)
	}{
		{"delete", func(t *testing.T, path string) { _ = os.Remove(path) }},
		{"truncate", func(t *testing.T, path string) { _ = os.Truncate(path, pagestore.PageSize+17) }},
		{"corrupt", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil || len(b) == 0 {
				return
			}
			for i := 0; i < len(b); i += 97 {
				b[i] ^= 0xFF
			}
			_ = os.WriteFile(path, b, 0o644)
		}},
	}
	for _, dmg := range damage {
		t.Run(dmg.name, func(t *testing.T) {
			base := t.TempDir()
			jdir := filepath.Join(base, "j")
			pdir := filepath.Join(base, "p")
			h, err := Open(pagedSeed(300), WithJournal(jdir), WithPagedLabels(pdir))
			if err != nil {
				t.Fatal(err)
			}
			items, err := h.QueryString("/lib/item")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 12; i++ {
				if _, _, err := h.InsertElement(items[i], 0, "acked"); err != nil {
					t.Fatal(err)
				}
			}
			want := h.XML()
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}

			files, err := filepath.Glob(filepath.Join(pdir, "labels-*.pages"))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range files {
				dmg.hit(t, f)
			}

			r, err := Open(nil, WithJournal(jdir), WithPagedLabels(pdir), WithRecover())
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if got := r.XML(); got != want {
				t.Fatal("acked edits lost after page-file damage")
			}
			acked, err := r.QueryString("//acked")
			if err != nil {
				t.Fatal(err)
			}
			if len(acked) != 12 {
				t.Fatalf("got %d acked markers, want 12", len(acked))
			}
		})
	}
}

// TestPagedNonConcurrent exercises the plain (non-snapshot) handle on
// the paged backend.
func TestPagedNonConcurrent(t *testing.T) {
	h, err := Open(pagedSeed(50), WithPagedLabels(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Concurrent() {
		t.Fatal("plain open must not be concurrent")
	}
	if h.Live() == nil {
		t.Fatal("plain handle must expose Live")
	}
	n, err := h.Count("//tag")
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("Count = %d, want 50", n)
	}
	// Checkpoint on an unjournaled paged handle flushes the pages.
	if err := h.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal("Close must stay idempotent:", err)
	}
}
