#!/bin/sh
# bench.sh — regenerate BENCH_PR10.json, the checked-in record of the
# label-kernel, journal group-commit, store-backend (slice vs paged,
# cold vs warm cache), query-planner, HTTP-serving and journal-shipping
# replication benchmarks (see internal/bench/kernels.go, journal.go,
# storebench.go, xpathbench.go, httpbench.go and followerbench.go).
#
#   sh scripts/bench.sh            # full run, benchtime 1s
#   BENCH_TIME=1x sh scripts/bench.sh   # smoke run (CI)
#   BENCH_OUT=/tmp/b.json sh scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

BENCH_TIME="${BENCH_TIME:-1s}"
BENCH_OUT="${BENCH_OUT:-BENCH_PR10.json}"

echo "==> go run ./cmd/experiments -bench-json $BENCH_OUT -bench-time $BENCH_TIME"
go run ./cmd/experiments -bench-json "$BENCH_OUT" -bench-time "$BENCH_TIME"
