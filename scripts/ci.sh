#!/bin/sh
# ci.sh — the full verification gate, runnable locally and in CI.
#
# Stages, in dependency order:
#   1. gofmt         — formatting drift fails fast
#   2. go vet        — the stock vet checks
#   3. go build      — both tag states (the invariants tag swaps files in)
#   4. go test       — the whole module, plus invariants-tagged label packages
#   5. go test -race — the concurrent document layer, the labelstore,
#                      the journal's group-commit pipeline and the
#                      HTTP serving stack (web + catalog), plus the
#                      snapshot storm, planned-query storm, hook-install
#                      race, close-drain and journal stress tests by name
#   6. crash safety  — the recovery/fault-injection suite by name, the
#                      journal kill matrix, then the FuzzReadAll,
#                      FuzzEncodeBetween and FuzzEditCodec seed corpora
#                      as short fuzz runs
#   7. labelvet      — the repo's own static-analysis suite (label invariants,
#                      lock hygiene, dropped errors, panic allowlist), then
#                      the concurrency/durability tier (guardedby, atomicmix,
#                      ackorder, lockorder) explicitly in both tag states and
#                      a fixture-coverage check over `labelvet -list`
#   8. bench smoke   — every benchmark once (-benchtime 1x) plus a throwaway
#                      BENCH JSON report, so the bench machinery cannot rot
#   9. metrics smoke — experiments binary dumps a -metrics-json snapshot and
#                      the labelstore/cdbs/qed/dyndoc keys must be present
#  10. httpd smoke    — dynxmld starts on a random port, the whole route
#                      surface is driven with curl (open, query, explain,
#                      edit, batch, sync, checkpoint, stats, xml, list,
#                      close, reopen), /debug/vars must carry the web_*
#                      and catalog_* families, and SIGTERM must stop the
#                      server cleanly (exit 0)
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go build -tags invariants ./..."
go build -tags invariants ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -tags invariants ./internal/bitstr/... ./internal/cdbs/..."
go test -tags invariants ./internal/bitstr/... ./internal/cdbs/...

echo "==> go test -race ./internal/dyndoc/... ./internal/labelstore/... ./internal/journal/... ./internal/catalog/... ./internal/web/..."
go test -race ./internal/dyndoc/... ./internal/labelstore/... ./internal/journal/... ./internal/catalog/... ./internal/web/...

echo "==> snapshot + planned-query storms under the race detector"
go test -race -count=1 -run 'TestSnapshotStorm|TestQueryDoesNotBlockOnWriter|TestPlannedQueryStorm|TestSetCommitHookInstallRace' ./internal/dyndoc
go test -race -count=1 -run 'TestParallelPartitionedJoins|TestCacheGenerations' ./internal/xpath/plan

echo "==> close-drain and eviction races under the race detector"
go test -race -count=1 -run 'TestCloseUnderLoad' .
go test -race -count=1 -run 'TestEvictAcquireRace|TestAcquireSingleflight' ./internal/catalog

echo "==> group-commit pipeline under the race detector"
go test -race -count=1 -run 'TestGroup|TestConcurrent|TestDurable|TestSyncIntervalStress|TestCloseVsAppend' ./internal/journal .

echo "==> crash-safety suite (recovery + fault injection)"
go test -count=1 -run 'TestRecover|TestFault|TestSynced|TestReadAllTorn' ./internal/labelstore ./internal/labelstore/faultfs

echo "==> journal kill matrix (every write/sync fault point at durability=always)"
go test -count=1 -run 'TestKillMatrix|TestReplay|TestCheckpoint' ./internal/journal

echo "==> FuzzReadAll seed corpus (5s)"
go test -run '^$' -fuzz 'FuzzReadAll' -fuzztime 5s ./internal/labelstore

echo "==> FuzzEditCodec seed corpus (5s)"
go test -run '^$' -fuzz 'FuzzEditCodec' -fuzztime 5s ./internal/journal

echo "==> FuzzEncodeBetween seed corpus (5s each, cdbs + qed)"
go test -run '^$' -fuzz 'FuzzEncodeBetween' -fuzztime 5s ./internal/cdbs
go test -run '^$' -fuzz 'FuzzEncodeBetween' -fuzztime 5s ./internal/qed

echo "==> labelvet ./..."
go run ./cmd/labelvet ./...

echo "==> labelvet -tags invariants ./..."
go run ./cmd/labelvet -tags invariants ./...

echo "==> labelvet concurrency/durability tier (both tag states)"
go run ./cmd/labelvet -only guardedby,atomicmix,ackorder,lockorder ./...
go run ./cmd/labelvet -only guardedby,atomicmix,ackorder,lockorder -tags invariants ./...

echo "==> labelvet fixture coverage (every analyzer has a fixture dir)"
go run ./cmd/labelvet -list | while read -r name _; do
	dir="internal/analysis/testdata/src/$name"
	if ! ls "$dir"/*.go >/dev/null 2>&1; then
		echo "labelvet: analyzer $name has no fixture under $dir" >&2
		exit 1
	fi
done

echo "==> bench smoke (-benchtime 1x)"
go test -run '^$' -bench . -benchtime 1x ./internal/bitstr ./internal/cdbs ./internal/qed
go test -run '^$' -bench 'Kernels/xpath/' -benchtime 1x .
BENCH_TIME=1x BENCH_OUT="${BENCH_SMOKE_OUT:-/tmp/bench_smoke.json}" sh scripts/bench.sh

echo "==> metrics snapshot smoke (-metrics-json)"
metrics_out="${METRICS_SMOKE_OUT:-/tmp/metrics_smoke.json}"
go run ./cmd/experiments -run live,overflow,durable -edits 60 -metrics-json "$metrics_out" >/dev/null
for key in labelstore_sync_seconds labelstore_records_total cdbs_relabel_burst_codes qed_code_len_digits dyndoc_inserts_total dyndoc_snapshot_swaps_total dyndoc_reader_staleness_gens dyndoc_batch_size cdbs_batch_insert_codes journal_append_seconds journal_appends_total journal_group_commits_total journal_group_commit_batches journal_checkpoints_total journal_checkpoint_reclaimed_bytes_total journal_replayed_edits_total xpath_plan_cache_hits_total xpath_result_cache_hits_total xpath_join_parallel_parts; do
	if ! grep -q "\"$key\"" "$metrics_out"; then
		echo "metrics smoke: $key missing from $metrics_out" >&2
		exit 1
	fi
done

echo "==> httpd smoke (dynxmld route surface + graceful shutdown)"
httpd_dir=$(mktemp -d)
httpd_bin="$httpd_dir/dynxmld"
httpd_addr_file="$httpd_dir/addr"
go build -o "$httpd_bin" ./cmd/dynxmld
"$httpd_bin" -addr 127.0.0.1:0 -root "$httpd_dir/docs" -addr-file "$httpd_addr_file" \
	-durability interval=20ms >"$httpd_dir/log" 2>&1 &
httpd_pid=$!
httpd_fail() {
	echo "httpd smoke: $1" >&2
	cat "$httpd_dir/log" >&2 || true
	kill "$httpd_pid" 2>/dev/null || true
	exit 1
}
i=0
while [ ! -s "$httpd_addr_file" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && httpd_fail "server did not write $httpd_addr_file"
	sleep 0.1
done
httpd_url="http://$(cat "$httpd_addr_file")"
curl -sf "$httpd_url/healthz" >/dev/null || httpd_fail "healthz"
curl -sf -XPOST "$httpd_url/v1/docs/ci/open" -d '{"xml":"<root><a></a></root>"}' >/dev/null || httpd_fail "open"
root_id=$(curl -sf -XPOST "$httpd_url/v1/docs/ci/query" -d '{"path":"/root"}' | sed 's/.*"ids":\[\([0-9]*\)\].*/\1/')
[ -n "$root_id" ] || httpd_fail "query gave no root id"
curl -sf -XPOST "$httpd_url/v1/docs/ci/edit" \
	-d "{\"op\":\"insert-element\",\"parent\":$root_id,\"pos\":0,\"name\":\"x\"}" >/dev/null || httpd_fail "edit"
curl -sf -XPOST "$httpd_url/v1/docs/ci/batch" \
	-d "{\"edits\":[{\"op\":\"insert-tree\",\"parent\":$root_id,\"pos\":0,\"fragment\":\"<x><y></y></x>\"}]}" >/dev/null || httpd_fail "batch"
curl -sf -XPOST "$httpd_url/v1/docs/ci/query" -d '{"path":"/root/x"}' | grep -q '"count":2' || httpd_fail "query after edits"
curl -sf -XPOST "$httpd_url/v1/docs/ci/explain" -d '{"path":"/root/x"}' | grep -q 'strategy' || httpd_fail "explain"
curl -sf -XPOST "$httpd_url/v1/docs/ci/sync" >/dev/null || httpd_fail "sync"
curl -sf -XPOST "$httpd_url/v1/docs/ci/checkpoint" >/dev/null || httpd_fail "checkpoint"
curl -sf "$httpd_url/v1/docs/ci" | grep -q '"journal"' || httpd_fail "stats"
curl -sf "$httpd_url/v1/docs/ci/xml" | grep -q '<y>' || httpd_fail "xml"
curl -sf "$httpd_url/v1/docs" | grep -q '"name":"ci"' || httpd_fail "list"
curl -sf -XPOST "$httpd_url/v1/docs/ci/close" >/dev/null || httpd_fail "close"
curl -sf -XPOST "$httpd_url/v1/docs/ci/open" -d '{}' >/dev/null || httpd_fail "reopen after close"
curl -sf -XPOST "$httpd_url/v1/docs/ci/query" -d '{"path":"/root/x"}' | grep -q '"count":2' || httpd_fail "replay lost an edit"
status=$(curl -s -o /dev/null -w '%{http_code}' "$httpd_url/v1/docs/ghost")
[ "$status" = "404" ] || httpd_fail "unknown doc gave $status, want 404"
vars_out="$httpd_dir/vars.json"
curl -sf "$httpd_url/debug/vars" >"$vars_out" || httpd_fail "debug/vars"
for key in web_requests_total web_inflight_requests web_panics_total web_timeouts_total \
	web_route_query_latency_seconds web_route_open_responses_2xx_total \
	catalog_opens_total catalog_replays_total catalog_open_docs catalog_resident_bytes catalog_evictions_total; do
	grep -q "\"$key\"" "$vars_out" || httpd_fail "/debug/vars missing $key"
done
kill -TERM "$httpd_pid"
httpd_status=0
wait "$httpd_pid" || httpd_status=$?
[ "$httpd_status" = "0" ] || httpd_fail "SIGTERM exit status $httpd_status, want 0"
rm -rf "$httpd_dir"

echo "CI gate passed."
