#!/bin/sh
# ci.sh — the full verification gate, runnable locally and in CI.
#
# Stages, in dependency order:
#   1. gofmt         — formatting drift fails fast
#   2. go vet        — the stock vet checks
#   3. go build      — both tag states (the invariants tag swaps files in)
#   4. go test       — the whole module, plus invariants-tagged label packages
#   5. go test -race — the concurrent document layer, the labelstore,
#                      the journal's group-commit pipeline and the
#                      HTTP serving stack (web + catalog + client), plus
#                      the snapshot storm, planned-query storm,
#                      hook-install race, close-drain, journal stress,
#                      watch storm and follower replication tests by name
#   6. crash safety  — the recovery/fault-injection suite by name, the
#                      journal kill matrix, the paged-label damage
#                      matrix (page files deleted/truncated/corrupted
#                      between runs), the torn-page-file sweep, the
#                      follower kill matrix, then the FuzzReadAll,
#                      FuzzPageRoundTrip, FuzzMetaDecode,
#                      FuzzEncodeBetween, FuzzEditCodec and
#                      FuzzStreamDecode seed corpora as short fuzz runs
#   7. labelvet      — the repo's own static-analysis suite (label invariants,
#                      lock hygiene, dropped errors, panic allowlist), then
#                      the concurrency/durability tier (guardedby, atomicmix,
#                      ackorder, lockorder) explicitly in both tag states and
#                      a fixture-coverage check over `labelvet -list`
#   8. bench smoke   — every benchmark once (-benchtime 1x), the
#                      store-backend kernels (slice vs paged, cold vs
#                      warm page cache) by name, plus a throwaway BENCH
#                      JSON report, so the bench machinery cannot rot
#   9. metrics smoke — experiments binary dumps a -metrics-json snapshot and
#                      the labelstore/cdbs/qed/dyndoc/journal-ship/watch/
#                      follower keys must be present
#  10. httpd smoke    — dynxmld starts on a random port, the whole route
#                      surface is driven through dynxmlctl (the typed
#                      /v1 client: open, query, explain, edit, batch,
#                      sync, checkpoint, stats, xml, list, close,
#                      reopen, horizon, watch), unversioned routes must
#                      308 to /v1, /debug/vars must carry the web_* and
#                      catalog_* families, and SIGTERM must stop the
#                      server cleanly (exit 0)
#  11. replication smoke — a second dynxmld boots with -follow against
#                      the first, serves a leader write at the ack'd
#                      horizon, rejects writes with 403 read_only,
#                      survives SIGKILL and catches up after restart
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go build -tags invariants ./..."
go build -tags invariants ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -tags invariants ./internal/bitstr/... ./internal/cdbs/..."
go test -tags invariants ./internal/bitstr/... ./internal/cdbs/...

echo "==> go test -race ./internal/pagestore/... ./internal/store/... ./internal/dyndoc/... ./internal/labelstore/... ./internal/journal/... ./internal/catalog/... ./internal/web/... ./client/..."
go test -race ./internal/pagestore/... ./internal/store/... ./internal/dyndoc/... ./internal/labelstore/... ./internal/journal/... ./internal/catalog/... ./internal/web/... ./client/...

echo "==> snapshot + planned-query storms under the race detector"
go test -race -count=1 -run 'TestSnapshotStorm|TestQueryDoesNotBlockOnWriter|TestPlannedQueryStorm|TestSetCommitHookInstallRace' ./internal/dyndoc
go test -race -count=1 -run 'TestParallelPartitionedJoins|TestCacheGenerations' ./internal/xpath/plan

echo "==> close-drain and eviction races under the race detector"
go test -race -count=1 -run 'TestCloseUnderLoad' .
go test -race -count=1 -run 'TestEvictAcquireRace|TestAcquireSingleflight' ./internal/catalog

echo "==> group-commit pipeline under the race detector"
go test -race -count=1 -run 'TestGroup|TestConcurrent|TestDurable|TestSyncIntervalStress|TestCloseVsAppend' ./internal/journal .

echo "==> replication + watch under the race detector"
go test -race -count=1 -run 'TestWatchStorm' ./internal/dyndoc
go test -race -count=1 -run 'TestFollowerKillMatrix|TestFollowerReadYourWrites|TestFollowerWatch' ./internal/journal
go test -race -count=1 -run 'TestOpenFollower' .
go test -race -count=1 -run 'TestClientFollowerReadYourWrites|TestClientWatch' ./client

echo "==> crash-safety suite (recovery + fault injection)"
go test -count=1 -run 'TestRecover|TestFault|TestSynced|TestReadAllTorn' ./internal/labelstore ./internal/labelstore/faultfs

echo "==> journal kill matrix (every write/sync fault point at durability=always)"
go test -count=1 -run 'TestKillMatrix|TestReplay|TestCheckpoint' ./internal/journal

echo "==> paged-label damage matrix (delete/truncate/corrupt page files, replay must restore)"
go test -count=1 -run 'TestPagedSurvivesPageFileDamage|TestPagedJournalRoundTrip' .
go test -count=1 -run 'TestTornFileEveryOffset' ./internal/pagestore

echo "==> follower kill matrix (kill the replica at every ship/persist point, catch up)"
go test -count=1 -run 'TestFollowerKillMatrix' ./internal/journal

echo "==> FuzzReadAll seed corpus (5s)"
go test -run '^$' -fuzz 'FuzzReadAll' -fuzztime 5s ./internal/labelstore

echo "==> FuzzPageRoundTrip + FuzzMetaDecode seed corpora (5s each, pagestore)"
go test -run '^$' -fuzz 'FuzzPageRoundTrip' -fuzztime 5s ./internal/pagestore
go test -run '^$' -fuzz 'FuzzMetaDecode' -fuzztime 5s ./internal/pagestore

echo "==> FuzzEditCodec seed corpus (5s)"
go test -run '^$' -fuzz 'FuzzEditCodec' -fuzztime 5s ./internal/journal

echo "==> FuzzStreamDecode seed corpus (5s, hostile-leader ship frames)"
go test -run '^$' -fuzz 'FuzzStreamDecode' -fuzztime 5s ./internal/journal

echo "==> FuzzEncodeBetween seed corpus (5s each, cdbs + qed)"
go test -run '^$' -fuzz 'FuzzEncodeBetween' -fuzztime 5s ./internal/cdbs
go test -run '^$' -fuzz 'FuzzEncodeBetween' -fuzztime 5s ./internal/qed

echo "==> labelvet ./..."
go run ./cmd/labelvet ./...

echo "==> labelvet -tags invariants ./..."
go run ./cmd/labelvet -tags invariants ./...

echo "==> labelvet concurrency/durability tier (both tag states)"
go run ./cmd/labelvet -only guardedby,atomicmix,ackorder,lockorder ./...
go run ./cmd/labelvet -only guardedby,atomicmix,ackorder,lockorder -tags invariants ./...

echo "==> labelvet fixture coverage (every analyzer has a fixture dir)"
go run ./cmd/labelvet -list | while read -r name _; do
	dir="internal/analysis/testdata/src/$name"
	if ! ls "$dir"/*.go >/dev/null 2>&1; then
		echo "labelvet: analyzer $name has no fixture under $dir" >&2
		exit 1
	fi
done

echo "==> bench smoke (-benchtime 1x)"
go test -run '^$' -bench . -benchtime 1x ./internal/bitstr ./internal/cdbs ./internal/qed
go test -run '^$' -bench 'Kernels/xpath/' -benchtime 1x .
go test -run '^$' -bench 'Kernels/store/' -benchtime 1x .
BENCH_TIME=1x BENCH_OUT="${BENCH_SMOKE_OUT:-/tmp/bench_smoke.json}" sh scripts/bench.sh

echo "==> metrics snapshot smoke (-metrics-json)"
metrics_out="${METRICS_SMOKE_OUT:-/tmp/metrics_smoke.json}"
go run ./cmd/experiments -run live,overflow,durable,follow -edits 60 -metrics-json "$metrics_out" >/dev/null
for key in labelstore_sync_seconds labelstore_records_total cdbs_relabel_burst_codes qed_code_len_digits dyndoc_inserts_total dyndoc_snapshot_swaps_total dyndoc_reader_staleness_gens dyndoc_batch_size cdbs_batch_insert_codes journal_append_seconds journal_appends_total journal_group_commits_total journal_group_commit_batches journal_checkpoints_total journal_checkpoint_reclaimed_bytes_total journal_replayed_edits_total xpath_plan_cache_hits_total xpath_result_cache_hits_total xpath_join_parallel_parts journal_ship_requests_total journal_ship_batches_total journal_ship_bytes_total journal_ship_snapshots_total watch_watchers_active watch_events_total watch_notifications_total watch_coalesced_total watch_requeries_total follower_lag_seqs follower_applied_total follower_resets_total follower_polls_total; do
	if ! grep -q "\"$key\"" "$metrics_out"; then
		echo "metrics smoke: $key missing from $metrics_out" >&2
		exit 1
	fi
done

echo "==> httpd smoke (dynxmld route surface via dynxmlctl + graceful shutdown)"
httpd_dir=$(mktemp -d)
httpd_bin="$httpd_dir/dynxmld"
ctl="$httpd_dir/dynxmlctl"
httpd_addr_file="$httpd_dir/addr"
go build -o "$httpd_bin" ./cmd/dynxmld
go build -o "$ctl" ./cmd/dynxmlctl
"$httpd_bin" -addr 127.0.0.1:0 -root "$httpd_dir/docs" -addr-file "$httpd_addr_file" \
	-durability interval=20ms >"$httpd_dir/log" 2>&1 &
httpd_pid=$!
httpd_fail() {
	echo "httpd smoke: $1" >&2
	cat "$httpd_dir/log" >&2 || true
	kill "$httpd_pid" 2>/dev/null || true
	exit 1
}
i=0
while [ ! -s "$httpd_addr_file" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && httpd_fail "server did not write $httpd_addr_file"
	sleep 0.1
done
httpd_url="http://$(cat "$httpd_addr_file")"
export DYNXML_ADDR="$httpd_url"
curl -sf "$httpd_url/healthz" >/dev/null || httpd_fail "healthz"
"$ctl" create ci '<root><a></a></root>' >/dev/null || httpd_fail "create"
root_id=$("$ctl" query -first ci /root) || httpd_fail "query gave no root id"
edit_seq=$("$ctl" insert -seq ci "$root_id" 0 x) || httpd_fail "edit"
[ "$edit_seq" -gt 0 ] || httpd_fail "edit ack carried no journal seq"
"$ctl" batch ci "[{\"op\":\"insert-tree\",\"parent\":$root_id,\"pos\":0,\"fragment\":\"<x><y></y></x>\"}]" >/dev/null || httpd_fail "batch"
[ "$("$ctl" count ci /root/x)" = "2" ] || httpd_fail "query after edits"
"$ctl" explain ci /root/x | grep -q 'strategy' || httpd_fail "explain"
"$ctl" sync ci || httpd_fail "sync"
"$ctl" checkpoint ci || httpd_fail "checkpoint"
"$ctl" stats ci | grep -q '"journal"' || httpd_fail "stats"
"$ctl" xml ci | grep -q '<y>' || httpd_fail "xml"
"$ctl" list | grep -q '"name":"ci"' || httpd_fail "list"
"$ctl" horizon -min "$edit_seq" -wait 5s ci >/dev/null || httpd_fail "horizon"
"$ctl" close ci || httpd_fail "close"
"$ctl" open ci >/dev/null || httpd_fail "reopen after close"
[ "$("$ctl" count ci /root/x)" = "2" ] || httpd_fail "replay lost an edit"
"$ctl" watch -n 1 -timeout 10s ci /root/w >"$httpd_dir/watch.out" 2>&1 &
watch_pid=$!
sleep 0.5
"$ctl" insert ci "$root_id" 0 w >/dev/null || httpd_fail "insert under watch"
wait "$watch_pid" || httpd_fail "watch never fired: $(cat "$httpd_dir/watch.out")"
grep -q '"added":1' "$httpd_dir/watch.out" || httpd_fail "watch notification malformed: $(cat "$httpd_dir/watch.out")"
if "$ctl" open ghost >/dev/null 2>&1; then httpd_fail "unknown doc did not fail"; fi
# Unversioned paths answer 308 to their /v1 twins (compat redirect).
status=$(curl -s -o /dev/null -w '%{http_code}' "$httpd_url/docs")
[ "$status" = "308" ] || httpd_fail "unversioned /docs gave $status, want 308"
vars_out="$httpd_dir/vars.json"
curl -sf "$httpd_url/debug/vars" >"$vars_out" || httpd_fail "debug/vars"
for key in web_requests_total web_inflight_requests web_panics_total web_timeouts_total \
	web_route_query_latency_seconds web_route_open_responses_2xx_total \
	web_route_journal_inflight web_route_watch_inflight web_route_horizon_inflight \
	catalog_opens_total catalog_replays_total catalog_open_docs catalog_resident_bytes catalog_evictions_total; do
	grep -q "\"$key\"" "$vars_out" || httpd_fail "/debug/vars missing $key"
done

echo "==> replication smoke (leader + follower dynxmld, kill and catch up)"
repl_addr_file="$httpd_dir/faddr"
"$httpd_bin" -addr 127.0.0.1:0 -root "$httpd_dir/replica" -addr-file "$repl_addr_file" \
	-follow "$httpd_url" >"$httpd_dir/flog" 2>&1 &
repl_pid=$!
repl_fail() {
	echo "replication smoke: $1" >&2
	cat "$httpd_dir/flog" >&2 || true
	kill "$repl_pid" "$httpd_pid" 2>/dev/null || true
	exit 1
}
i=0
while [ ! -s "$repl_addr_file" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && repl_fail "follower did not write $repl_addr_file"
	sleep 0.1
done
repl_url="http://$(cat "$repl_addr_file")"
# Write through the leader, then the follower must serve at/after the
# acknowledged horizon (read-your-writes across the pair).
seq1=$("$ctl" insert -seq ci "$root_id" 0 rep) || repl_fail "leader write"
"$ctl" -addr "$repl_url" horizon -min "$seq1" -wait 10s ci >/dev/null || repl_fail "follower never reached seq $seq1"
[ "$("$ctl" -addr "$repl_url" count ci /root/rep)" = "1" ] || repl_fail "leader write invisible on follower"
# Mutations on the follower are rejected read-only.
if "$ctl" -addr "$repl_url" insert ci "$root_id" 0 nope >/dev/null 2>&1; then
	repl_fail "follower accepted a write"
fi
# SIGKILL the follower mid-life; its mirror must let a restart catch up.
kill -KILL "$repl_pid"
wait "$repl_pid" 2>/dev/null || true
seq2=$("$ctl" insert -seq ci "$root_id" 0 rep) || repl_fail "leader write while follower dead"
: >"$repl_addr_file"
"$httpd_bin" -addr 127.0.0.1:0 -root "$httpd_dir/replica" -addr-file "$repl_addr_file" \
	-follow "$httpd_url" >>"$httpd_dir/flog" 2>&1 &
repl_pid=$!
i=0
while [ ! -s "$repl_addr_file" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && repl_fail "restarted follower did not write $repl_addr_file"
	sleep 0.1
done
repl_url="http://$(cat "$repl_addr_file")"
"$ctl" -addr "$repl_url" horizon -min "$seq2" -wait 10s ci >/dev/null || repl_fail "restarted follower never caught up to seq $seq2"
[ "$("$ctl" -addr "$repl_url" count ci /root/rep)" = "2" ] || repl_fail "catch-up lost a write"
kill -TERM "$repl_pid"
repl_status=0
wait "$repl_pid" || repl_status=$?
[ "$repl_status" = "0" ] || repl_fail "follower SIGTERM exit status $repl_status, want 0"

kill -TERM "$httpd_pid"
httpd_status=0
wait "$httpd_pid" || httpd_status=$?
[ "$httpd_status" = "0" ] || httpd_fail "SIGTERM exit status $httpd_status, want 0"
rm -rf "$httpd_dir"

echo "CI gate passed."
