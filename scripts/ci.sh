#!/bin/sh
# ci.sh — the full verification gate, runnable locally and in CI.
#
# Stages, in dependency order:
#   1. gofmt         — formatting drift fails fast
#   2. go vet        — the stock vet checks
#   3. go build      — both tag states (the invariants tag swaps files in)
#   4. go test       — the whole module, plus invariants-tagged label packages
#   5. go test -race — the concurrent document layer
#   6. labelvet      — the repo's own static-analysis suite (label invariants,
#                      lock hygiene, dropped errors, panic allowlist)
#   7. bench smoke   — every benchmark once (-benchtime 1x) plus a throwaway
#                      BENCH JSON report, so the bench machinery cannot rot
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go build -tags invariants ./..."
go build -tags invariants ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -tags invariants ./internal/bitstr/... ./internal/cdbs/..."
go test -tags invariants ./internal/bitstr/... ./internal/cdbs/...

echo "==> go test -race ./internal/dyndoc/..."
go test -race ./internal/dyndoc/...

echo "==> labelvet ./..."
go run ./cmd/labelvet ./...

echo "==> labelvet -tags invariants ./..."
go run ./cmd/labelvet -tags invariants ./...

echo "==> bench smoke (-benchtime 1x)"
go test -run '^$' -bench . -benchtime 1x ./internal/bitstr ./internal/cdbs ./internal/qed
BENCH_TIME=1x BENCH_OUT="${BENCH_SMOKE_OUT:-/tmp/bench_smoke.json}" sh scripts/bench.sh

echo "CI gate passed."
